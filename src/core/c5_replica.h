// C5-Cicada backup: scheduler / workers / snapshotter pipeline (§7.2).
//
// Invariants the pipeline maintains, on which every reader of the backup
// relies:
//  * Per-row order: a write executes only after the previous write to its
//    row (identified by prev_ts) is installed, so each row's version chain
//    is always a prefix of the primary's history for that row.
//  * Transaction-boundary snapshots: each worker's published c' stays below
//    any transaction it has partially applied, so the snapshot
//    c = min(watermark, min c') never exposes a torn transaction.
//  * Monotonicity: watermark, c', and the visible snapshot only advance —
//    read-only transactions observe monotonic prefix consistency.
//  * Non-blocking reads: the snapshotter advances c without stopping
//    workers; versions are guarded by storage epochs, never locks.

#ifndef C5_CORE_C5_REPLICA_H_
#define C5_CORE_C5_REPLICA_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/checkpoint.h"

#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "common/spsc_queue.h"
#include "replica/lag_tracker.h"
#include "replica/replica.h"

namespace c5::core {

// C5-Cicada (§7.2): the faithful implementation of the paper's design.
//
// Scheduler (single thread): embeds the per-row FIFO queues in the log by
// setting each record's prev_timestamp to the timestamp of the preceding
// write to the same row ("dynamically allocating and managing these queues
// prevented the single-threaded scheduler from keeping up with Cicada"),
// then PARTITIONS each segment's records by scheduler key (a hash of the
// row's name) into one batch per worker. Row affinity is the load-balancing
// AND ordering story: every write of a row lands on the same worker in log
// order, so a worker never waits on a predecessor owned by a peer — the
// deferred queue below survives only as a defensive fallback.
//
// Workers: apply their batch's records in order; a write is safe to execute
// iff the newest version of its row carries exactly prev_timestamp (with row
// affinity that always holds; anything else is deferred to a worker-local
// FIFO re-checked at batch boundaries). Visibility is EPOCH-BATCHED: a
// worker publishes c' = (smallest timestamp it might still execute) - 1
// once per batch — a local epoch bump — instead of once per record. The
// published c' can only lag the true per-worker floor, never exceed it, so
// the snapshot the aggregator derives stays a valid prefix point.
//
// Snapshotter (the aggregator): periodically advances the current snapshot
// c to min(watermark, min over workers of c'). Because every write of a
// transaction carries the transaction's commit timestamp and a worker's c'
// stays below any batch it has not finished, c always lands on a
// transaction boundary — monotonic prefix consistency without ever blocking
// workers (§4.2's current/next/future snapshots realized through version
// timestamps).
class C5Replica : public replica::ReplicaBase {
 public:
  struct Options {
    int num_workers = 4;
    std::chrono::microseconds snapshot_interval =
        std::chrono::microseconds(100);
    // If > 0, the snapshotter garbage-collects version chains every
    // `gc_every` snapshots using the replica's safe horizon.
    int gc_every = 0;
    // If non-empty and checkpoint_every > 0, the snapshotter writes a
    // consistent checkpoint of the backup (storage/checkpoint.h) at the
    // current snapshot every `checkpoint_every` snapshot advances. On
    // restart, load the checkpoint and resume the archived log with
    // ha::ResumeSegmentSource from the loaded timestamp. The write runs on
    // the snapshotter thread (it never blocks workers — the multi-version
    // store keeps the snapshot stable), so very small intervals trade
    // snapshot freshness for checkpoint recency.
    std::string checkpoint_path;
    int checkpoint_every = 0;
    // Initial capacity of the scheduler's flat row -> last-write-ts map.
    // Pre-size to the replayed log's row universe to avoid rehash stalls on
    // the single scheduler thread mid-replay.
    std::size_t scheduler_map_capacity = std::size_t{1} << 16;
  };

  // Per-worker load accounting for the fleet-model scaling methodology
  // (BENCH_replay.json worker_scaling): records applied by the worker and
  // the CPU nanoseconds its batch processing consumed
  // (CLOCK_THREAD_CPUTIME_ID deltas, so co-scheduling on a small host does
  // not charge a worker for its peers' time). Idle spinning between batches
  // is excluded — the numbers answer "what does this worker's share of the
  // apply work cost on dedicated hardware".
  struct WorkerLoad {
    std::uint64_t applied_records = 0;
    std::uint64_t cpu_ns = 0;
  };

  C5Replica(storage::Database* db, Options options,
            replica::LagTracker* lag = nullptr);
  ~C5Replica() override { Stop(); }

  void Start(log::SegmentSource* source) override;
  void WaitUntilCaughtUp() override;
  void Stop() override;
  std::string name() const override { return "c5"; }

  // Largest commit timestamp fully scheduled (diagnostics / tests).
  Timestamp watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  // Snapshot timestamp of the last checkpoint written (0 if none).
  Timestamp last_checkpoint_ts() const {
    return last_checkpoint_ts_.load(std::memory_order_acquire);
  }

  // Per-worker apply/CPU accounting, index-aligned with the worker ids.
  // Coherent after WaitUntilCaughtUp (workers flush once per batch).
  std::vector<WorkerLoad> WorkerLoads() const;

 private:
  // One worker's slice of one segment: pointers into the segment's record
  // array, in log order (row affinity means they are also in per-row order).
  // Pooled and recycled through the free list below, so steady-state
  // scheduling allocates nothing.
  struct Batch {
    std::vector<const log::LogRecord*> recs;  // capacity survives reuse
    // min commit_ts across recs, minus 1: the worker's c' while the batch
    // is in flight. Everything at or above floor+1 is unexecuted by this
    // worker until the batch completes.
    Timestamp floor = 0;
  };

  struct WorkerState {
    explicit WorkerState(std::size_t queue_capacity)
        : queue(queue_capacity) {}
    SpscQueue<Batch*> queue;
    // c' (§7.2): one writer (the worker), one reader (the snapshotter).
    // Bumped once per batch (the "local epoch"), not per record.
    alignas(64) std::atomic<Timestamp> c_prime{0};
    std::atomic<bool> finished{false};
    // Fleet-model load accounting, flushed once per batch.
    std::atomic<std::uint64_t> applied_records{0};
    std::atomic<std::uint64_t> cpu_ns{0};
  };

  void SchedulerLoop(log::SegmentSource* source);
  void WorkerLoop(int idx);
  void SnapshotterLoop();

  Batch* AcquireBatch();
  void ReleaseBatch(Batch* batch);

  // Counter deltas a worker accumulates locally and flushes into stats_
  // once per batch (epoch-batched, like c').
  struct LocalCounts {
    std::uint64_t applied_writes = 0;
    std::uint64_t applied_txns = 0;
    std::uint64_t deferred_writes = 0;
  };
  void FlushCounts(LocalCounts& counts);

  // Attempts one deferred-queue sweep; returns true if progress was made.
  bool RetryDeferred(std::deque<const log::LogRecord*>& deferred,
                     LocalCounts& counts);

  // Applies one record if its predecessor is in place. Returns false to
  // defer. Row-slot creation and index maintenance are idempotent and happen
  // on first attempt.
  bool TryApply(const log::LogRecord& rec, LocalCounts& counts);

  Options options_;
  replica::LagTracker* lag_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  alignas(64) std::atomic<Timestamp> watermark_{0};
  std::atomic<Timestamp> last_checkpoint_ts_{0};
  std::atomic<bool> scheduler_done_{false};
  std::atomic<int> workers_running_{0};
  std::atomic<bool> shutdown_{false};

  // Batch pool: the scheduler acquires, workers release. Locked once per
  // batch on each side; batch_storage_ owns every batch ever created.
  SpinLock pool_lock_{LockRank::kReplicaState};
  std::vector<std::unique_ptr<Batch>> batch_storage_ C5_GUARDED_BY(pool_lock_);
  std::vector<Batch*> batch_free_ C5_GUARDED_BY(pool_lock_);

  std::vector<std::thread> threads_;
};

}  // namespace c5::core

#endif  // C5_CORE_C5_REPLICA_H_
