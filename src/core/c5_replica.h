// C5-Cicada backup: scheduler / workers / snapshotter pipeline (§7.2).
//
// Invariants the pipeline maintains, on which every reader of the backup
// relies:
//  * Per-row order: a write executes only after the previous write to its
//    row (identified by prev_ts) is installed, so each row's version chain
//    is always a prefix of the primary's history for that row.
//  * Transaction-boundary snapshots: each worker's published c' stays below
//    any transaction it has partially applied, so the snapshot
//    c = min(watermark, min c') never exposes a torn transaction.
//  * Monotonicity: watermark, c', and the visible snapshot only advance —
//    read-only transactions observe monotonic prefix consistency.
//  * Non-blocking reads: the snapshotter advances c without stopping
//    workers; versions are guarded by storage epochs, never locks.

#ifndef C5_CORE_C5_REPLICA_H_
#define C5_CORE_C5_REPLICA_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/checkpoint.h"

#include "common/spsc_queue.h"
#include "replica/lag_tracker.h"
#include "replica/replica.h"

namespace c5::core {

// C5-Cicada (§7.2): the faithful implementation of the paper's design.
//
// Scheduler (single thread): embeds the per-row FIFO queues in the log by
// setting each record's prev_timestamp to the timestamp of the preceding
// write to the same row ("dynamically allocating and managing these queues
// prevented the single-threaded scheduler from keeping up with Cicada"). It
// marks each segment's preprocessed flag and hands segments to workers in
// round-robin order.
//
// Workers: for each record, a write is safe to execute iff the newest version
// of its row carries exactly prev_timestamp; otherwise the write is deferred
// to a worker-local FIFO and re-checked at segment boundaries ("a distributed,
// approximate version of the scheduler queue"). Each worker publishes
// c' = (smallest timestamp it might still execute) - 1.
//
// Snapshotter: periodically advances the current snapshot c to
// min(watermark, min over workers of c'). Because every write of a
// transaction carries the transaction's commit timestamp and a worker's c'
// stays below an incompletely applied transaction, c always lands on a
// transaction boundary — giving monotonic prefix consistency without ever
// blocking workers (§4.2's current/next/future snapshots realized through
// version timestamps).
class C5Replica : public replica::ReplicaBase {
 public:
  struct Options {
    int num_workers = 4;
    std::chrono::microseconds snapshot_interval =
        std::chrono::microseconds(100);
    // If > 0, the snapshotter garbage-collects version chains every
    // `gc_every` snapshots using the replica's safe horizon.
    int gc_every = 0;
    // If non-empty and checkpoint_every > 0, the snapshotter writes a
    // consistent checkpoint of the backup (storage/checkpoint.h) at the
    // current snapshot every `checkpoint_every` snapshot advances. On
    // restart, load the checkpoint and resume the archived log with
    // ha::ResumeSegmentSource from the loaded timestamp. The write runs on
    // the snapshotter thread (it never blocks workers — the multi-version
    // store keeps the snapshot stable), so very small intervals trade
    // snapshot freshness for checkpoint recency.
    std::string checkpoint_path;
    int checkpoint_every = 0;
    // Initial capacity of the scheduler's flat row -> last-write-ts map.
    // Pre-size to the replayed log's row universe to avoid rehash stalls on
    // the single scheduler thread mid-replay.
    std::size_t scheduler_map_capacity = std::size_t{1} << 16;
  };

  C5Replica(storage::Database* db, Options options,
            replica::LagTracker* lag = nullptr);
  ~C5Replica() override { Stop(); }

  void Start(log::SegmentSource* source) override;
  void WaitUntilCaughtUp() override;
  void Stop() override;
  std::string name() const override { return "c5"; }

  // Largest commit timestamp fully scheduled (diagnostics / tests).
  Timestamp watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  // Snapshot timestamp of the last checkpoint written (0 if none).
  Timestamp last_checkpoint_ts() const {
    return last_checkpoint_ts_.load(std::memory_order_acquire);
  }

 private:
  struct WorkerState {
    explicit WorkerState(std::size_t queue_capacity)
        : queue(queue_capacity) {}
    SpscQueue<log::LogSegment*> queue;
    // c' (§7.2): one writer (the worker), one reader (the snapshotter).
    alignas(64) std::atomic<Timestamp> c_prime{0};
    std::atomic<bool> finished{false};
  };

  void SchedulerLoop(log::SegmentSource* source);
  void WorkerLoop(int idx);
  void SnapshotterLoop();

  // Attempts one deferred-queue sweep; returns true if progress was made.
  bool RetryDeferred(std::deque<const log::LogRecord*>& deferred);

  // Applies one record if its predecessor is in place. Returns false to
  // defer. Row-slot creation and index maintenance are idempotent and happen
  // on first attempt.
  bool TryApply(const log::LogRecord& rec);

  Options options_;
  replica::LagTracker* lag_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  alignas(64) std::atomic<Timestamp> watermark_{0};
  std::atomic<Timestamp> last_checkpoint_ts_{0};
  std::atomic<bool> scheduler_done_{false};
  std::atomic<int> workers_running_{0};
  std::atomic<bool> shutdown_{false};

  std::vector<std::thread> threads_;
};

}  // namespace c5::core

#endif  // C5_CORE_C5_REPLICA_H_
