#ifndef C5_CORE_C5_MYROCKS_REPLICA_H_
#define C5_CORE_C5_MYROCKS_REPLICA_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "replica/lag_tracker.h"
#include "replica/replica.h"

namespace c5::core {

// C5-MyRocks (§5): the backward-compatible variant deployed at Meta. Same
// row-granularity safety rule as C5Replica (a write executes only when the
// previous write to its row is in place), plus the two constraints backward
// compatibility imposed:
//
//  1. One-thread-per-transaction execution (§5.1): MyRocks's row-based
//     logging assumes all of a transaction's writes are executed by the same
//     worker. Workers pick up whole transactions in commit order; a write
//     executes once it is safe ("the worker first waits until the write
//     reaches the head of its per-row queue ... then executes it"). Rather
//     than stalling the thread on each unsafe write, a worker defers it and
//     keeps a WINDOW of open transactions (popping newer ones while older
//     ones wait on their deferred writes), completing each transaction —
//     for visibility purposes — only when its last write lands. Waiting
//     in-place instead serializes the log on contended-row-last record
//     orderings: TPC-C's write-optimized Payment puts the hot warehouse
//     write last, which made every transaction's stall cover its
//     predecessor's ENTIRE body (see docs/PERFORMANCE.md).
//  2. A blocking two-snapshot snapshotter (§5.2): RocksDB snapshots can only
//     capture the current state, so taking one requires briefly blocking
//     writes with timestamps above the chosen boundary n. The snapshot
//     frequency I is tunable; taking a snapshot can be given a simulated
//     cost to reproduce the lag spikes the paper discusses.
class C5MyRocksReplica : public replica::ReplicaBase {
 public:
  struct Options {
    int num_workers = 4;
    // Approximate snapshot frequency I (§5.2; the paper's Fig. 8 uses 10ms).
    std::chrono::microseconds snapshot_interval =
        std::chrono::microseconds(10000);
    // Simulated cost of taking a RocksDB snapshot while writers are blocked.
    std::chrono::microseconds snapshot_cost = std::chrono::microseconds(0);
    int gc_every = 0;
    // Initial capacity of the scheduler's flat row -> last-write-ts map
    // (see C5Replica::Options::scheduler_map_capacity).
    std::size_t scheduler_map_capacity = std::size_t{1} << 16;
  };

  C5MyRocksReplica(storage::Database* db, Options options,
                   replica::LagTracker* lag = nullptr);
  ~C5MyRocksReplica() override { Stop(); }

  void Start(log::SegmentSource* source) override;
  void WaitUntilCaughtUp() override;
  void Stop() override;
  std::string name() const override { return "c5-myrocks"; }

 private:
  // A transaction ready for execution: contiguous records within a segment.
  struct TxnUnit {
    const log::LogRecord* first;
    std::size_t count;
    Timestamp commit_ts;
  };

  // Commit-ordered dispatch queue that atomically tracks the minimum
  // timestamp that is dispatched-or-in-flight, so the snapshotter can pick a
  // provably applied boundary n. All transitions happen under one mutex:
  // there is no window in which a transaction is neither in the queue nor in
  // a worker's in-flight slot.
  class TxnDispatchQueue {
   public:
    explicit TxnDispatchQueue(int num_workers)
        : inflight_(num_workers, kMaxTimestamp) {}

    void Push(TxnUnit txn);
    // Enqueues a whole segment's transactions under ONE mutex acquisition
    // and at most one wakeup. The scheduler dispatches per segment; pushing
    // per transaction costs a futex notify per commit at live-primary rates
    // (hundreds of thousands of syscalls/s), which on an oversubscribed
    // host comes straight out of the primary's CPU budget.
    void PushBatch(const TxnUnit* txns, std::size_t count);
    // Blocks; returns nullopt when closed and drained. With
    // `completed_all_prior` the worker declares everything it previously
    // popped fully applied, so its floor is RESET to the popped transaction
    // (or kMaxTimestamp while it waits / at close) under the pop mutex —
    // completion and next-pop in one mutex acquisition, the per-transaction
    // fast path. Without it the floor only LOWERS (min), for a worker whose
    // window still holds older open transactions. Either way MinUnapplied
    // never misses a transaction in transit.
    std::optional<TxnUnit> Pop(int worker, bool completed_all_prior = false);
    // Non-blocking Pop for a worker that still has open transactions (its
    // floor stays put — popped transactions are newer than anything open).
    std::optional<TxnUnit> TryPop(int worker);
    // Publishes `worker`'s in-flight floor: the commit timestamp of its
    // oldest incomplete transaction, or kMaxTimestamp when none remain.
    void SetFloor(int worker, Timestamp ts);
    void Close();

    // Smallest timestamp not yet fully applied (kMaxTimestamp if none
    // outstanding). Everything strictly below is applied.
    Timestamp MinUnapplied() const;

    std::size_t SizeApprox() const;

   private:
    mutable Mutex mu_{LockRank::kQueue};
    CondVar cv_;
    std::deque<TxnUnit> queue_ C5_GUARDED_BY(mu_);
    std::vector<Timestamp> inflight_ C5_GUARDED_BY(mu_);
    bool closed_ C5_GUARDED_BY(mu_) = false;
    int waiters_ C5_GUARDED_BY(mu_) = 0;
    alignas(64) std::atomic<std::size_t> size_hint_{0};
  };

  void SchedulerLoop(log::SegmentSource* source);
  void WorkerLoop(int idx);
  void SnapshotterLoop();

  Options options_;
  replica::LagTracker* lag_;

  TxnDispatchQueue dispatch_;
  alignas(64) std::atomic<Timestamp> watermark_{0};
  // Snapshot barrier (§5.2): while active, workers must not install writes
  // with timestamps greater than barrier_ts_. kMaxTimestamp = inactive.
  alignas(64) std::atomic<Timestamp> barrier_ts_{kMaxTimestamp};

  std::atomic<bool> scheduler_done_{false};
  std::atomic<int> workers_running_{0};
  std::atomic<bool> shutdown_{false};

  std::vector<std::thread> threads_;
};

}  // namespace c5::core

#endif  // C5_CORE_C5_MYROCKS_REPLICA_H_
