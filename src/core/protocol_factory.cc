#include "core/protocol_factory.h"

#include "core/c5_myrocks_replica.h"
#include "core/c5_replica.h"
#include "replica/granularity_replica.h"
#include "replica/kuafu_replica.h"
#include "replica/query_fresh_replica.h"
#include "replica/single_thread_replica.h"

namespace c5::core {

const char* ToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kC5:
      return "c5";
    case ProtocolKind::kC5MyRocks:
      return "c5-myrocks";
    case ProtocolKind::kC5Queue:
      return "c5-queue";
    case ProtocolKind::kPageGranularity:
      return "page";
    case ProtocolKind::kTableGranularity:
      return "table";
    case ProtocolKind::kKuaFu:
      return "kuafu";
    case ProtocolKind::kKuaFuUnconstrained:
      return "kuafu-unconstrained";
    case ProtocolKind::kSingleThread:
      return "single-threaded";
    case ProtocolKind::kQueryFresh:
      return "query-fresh";
  }
  return "unknown";
}

namespace {

std::unique_ptr<replica::Replica> MakeReplicaImpl(
    ProtocolKind kind, storage::Database* db, const ProtocolOptions& options,
    replica::LagTracker* lag) {
  switch (kind) {
    case ProtocolKind::kC5: {
      C5Replica::Options o;
      o.num_workers = options.num_workers;
      o.snapshot_interval = options.snapshot_interval;
      o.gc_every = options.gc_every;
      o.scheduler_map_capacity = options.scheduler_map_capacity;
      return std::make_unique<C5Replica>(db, o, lag);
    }
    case ProtocolKind::kC5MyRocks: {
      C5MyRocksReplica::Options o;
      o.num_workers = options.num_workers;
      o.snapshot_interval = options.snapshot_interval;
      o.snapshot_cost = options.snapshot_cost;
      o.gc_every = options.gc_every;
      o.scheduler_map_capacity = options.scheduler_map_capacity;
      return std::make_unique<C5MyRocksReplica>(db, o, lag);
    }
    case ProtocolKind::kC5Queue:
    case ProtocolKind::kPageGranularity:
    case ProtocolKind::kTableGranularity: {
      replica::GranularityReplica::Options o;
      o.num_workers = options.num_workers;
      o.visibility_interval = options.snapshot_interval;
      o.granularity = kind == ProtocolKind::kC5Queue
                          ? replica::Granularity::kRow
                          : (kind == ProtocolKind::kPageGranularity
                                 ? replica::Granularity::kPage
                                 : replica::Granularity::kTable);
      return std::make_unique<replica::GranularityReplica>(db, o, lag);
    }
    case ProtocolKind::kKuaFu:
    case ProtocolKind::kKuaFuUnconstrained: {
      replica::KuaFuReplica::Options o;
      o.num_workers = options.num_workers;
      o.visibility_interval = options.snapshot_interval;
      o.unconstrained = kind == ProtocolKind::kKuaFuUnconstrained;
      return std::make_unique<replica::KuaFuReplica>(db, o, lag);
    }
    case ProtocolKind::kSingleThread:
      return std::make_unique<replica::SingleThreadReplica>(db, lag);
    case ProtocolKind::kQueryFresh:
      return std::make_unique<replica::QueryFreshReplica>(
          db, replica::QueryFreshReplica::Options{}, lag);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<replica::Replica> MakeReplica(ProtocolKind kind,
                                              storage::Database* db,
                                              const ProtocolOptions& options,
                                              replica::LagTracker* lag) {
  std::unique_ptr<replica::Replica> replica =
      MakeReplicaImpl(kind, db, options, lag);
  // Cross-protocol construction hook: the stable instance id. Every protocol
  // in this repository derives ReplicaBase, so the cast cannot fail for
  // in-tree kinds.
  if (replica != nullptr && !options.instance_id.empty()) {
    if (auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get())) {
      base->SetInstanceId(options.instance_id);
    }
  }
  return replica;
}

}  // namespace c5::core
