// Durability walkthrough: the log's life beyond memory. A primary's
// segments are archived to disk in the CRC-framed wire format; the backup —
// a standalone c5::BackupNode — checkpoints its state at a consistent
// snapshot; then the "machine reboots": a fresh node loads the checkpoint
// and resumes the archived log from the checkpoint timestamp instead of
// replaying history from zero, reading at the checkpoint the moment it
// starts (the recovery visibility contract).
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/durability_demo

#include <cstdio>
#include <filesystem>

#include "api/cluster.h"
#include "ha/recovery.h"
#include "log/log_file.h"
#include "txn/mvtso_engine.h"

using namespace c5;

int main() {
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string archive_path = dir + "/c5_demo_archive.log";
  const std::string ckpt_path = dir + "/c5_demo.ckpt";

  // --- Primary: commit 5000 events, archiving every log segment to disk.
  storage::Database primary;
  const TableId events = primary.CreateTable("events");
  TxnClock clock;
  log::PerThreadLogCollector collector(/*segment_records=*/128);
  txn::MvtsoEngine engine(&primary, &collector, &clock);
  for (std::uint64_t n = 0; n < 5000; ++n) {
    (void)engine.ExecuteWithRetry([&](txn::Txn& txn) {
      return txn.Put(events, n, "event-" + std::to_string(n));
    });
  }
  log::Log log = collector.Coalesce();

  log::LogFileWriter writer;
  if (!writer.Open(archive_path).ok()) return 1;
  for (std::size_t s = 0; s < log.NumSegments(); ++s) {
    (void)writer.Append(*log.segment(s));
  }
  (void)writer.Close();
  std::printf("archived %llu segments (%llu records, %llu bytes, CRC32C "
              "framed)\n",
              static_cast<unsigned long long>(writer.segments_written()),
              static_cast<unsigned long long>(log.NumRecords()),
              static_cast<unsigned long long>(writer.bytes_written()));

  // --- Backup, first incarnation: applies 60% of the log, checkpoints at
  // its visible snapshot, then the process dies.
  Timestamp ckpt_ts = 0;
  {
    BackupNode node({.protocol = core::ProtocolKind::kC5,
                     .protocol_options = {.num_workers = 2}});
    node.CreateTable("events");
    log::PrefixSegmentSource prefix(&log, log.NumSegments() * 3 / 5);
    node.Start(&prefix);
    node.WaitUntilCaughtUp();
    ckpt_ts = node.VisibleTimestamp();
    if (!node.WriteCheckpoint(ckpt_path).ok()) return 1;
    node.Stop();
    std::printf("backup checkpointed at ts=%llu, then CRASHED\n",
                static_cast<unsigned long long>(ckpt_ts));
  }  // all in-memory backup state destroyed here

  // --- Second incarnation: recover = checkpoint + archive tail.
  BackupNode node({.protocol = core::ProtocolKind::kC5,
                   .protocol_options = {.num_workers = 2}});
  node.CreateTable("events");
  if (!node.RestoreFromCheckpoint(ckpt_path).ok()) return 1;
  log::ReadLogResult archive;
  if (!log::ReadLogFile(archive_path, &archive).ok()) return 1;
  std::printf("recovered checkpoint (ts=%llu) + archive (%zu segments, "
              "clean_end=%s)\n",
              static_cast<unsigned long long>(node.restored_timestamp()),
              archive.log.NumSegments(), archive.clean_end ? "yes" : "no");

  ha::ResumeSegmentSource resume(&archive.log, node.restored_timestamp());
  node.Start(&resume);
  // Readable at the checkpoint immediately — before replay finishes.
  std::printf("visible right after restart: ts=%llu (the checkpoint)\n",
              static_cast<unsigned long long>(node.VisibleTimestamp()));
  node.WaitUntilCaughtUp();
  std::printf("resumed: skipped %zu fully-covered segments, caught up to "
              "ts=%llu\n",
              resume.skipped(),
              static_cast<unsigned long long>(node.VisibleTimestamp()));

  Snapshot snap = node.OpenSnapshot();
  Value v;
  const bool first_ok = snap.Get(events, 0, &v).ok();
  const bool last_ok = snap.Get(events, 4999, &v).ok();
  std::printf("read event 0: %s; read event 4999: %s -> %s\n",
              first_ok ? "ok" : "MISSING", last_ok ? "ok" : "MISSING",
              last_ok ? v.c_str() : "-");
  node.Stop();

  std::filesystem::remove(archive_path);
  std::filesystem::remove(ckpt_path);
  return (first_ok && last_ok) ? 0 : 1;
}
