// Quickstart: the c5::Cluster façade — a primary executing transactions, an
// asynchronous backup running C5's cloned concurrency control, and the
// Snapshot read surface (point get, multi-get, ordered scan) over the
// backup's monotonic-prefix-consistent state.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "api/cluster.h"

using namespace c5;

int main() {
  // --- One object owns the whole deployment: an MVTSO primary, log
  // shipping, and a C5 backup with 2 apply workers.
  Cluster cluster(ClusterOptions{}
                      .WithEngine(ha::EngineKind::kMvtso)
                      .WithBackups(1, core::ProtocolKind::kC5)
                      .WithWorkers(2));
  const TableId accounts = cluster.CreateTable("accounts");
  cluster.Start();

  // --- Execute read-write transactions on the primary.
  Status s = cluster.ExecuteWithRetry([&](txn::Txn& txn) {
    Status st = txn.Insert(accounts, /*key=*/1, "alice:100");
    if (!st.ok()) return st;
    return txn.Insert(accounts, /*key=*/2, "bob:50");
  });
  std::printf("insert txn: %s\n", s.ToString().c_str());

  s = cluster.ExecuteWithRetry([&](txn::Txn& txn) {
    // Transfer: read-modify-write both rows atomically.
    Value a, b;
    Status st = txn.ReadForUpdate(accounts, 1, &a);
    if (!st.ok()) return st;
    st = txn.ReadForUpdate(accounts, 2, &b);
    if (!st.ok()) return st;
    st = txn.Update(accounts, 1, "alice:70");
    if (!st.ok()) return st;
    return txn.Update(accounts, 2, "bob:80");
  });
  std::printf("transfer txn: %s\n", s.ToString().c_str());

  // --- The primary retires; the backup drains the shipped log.
  cluster.StopPrimary();
  cluster.WaitForBackups();

  // --- Read-only transactions on the backup: one Snapshot handle pins one
  // consistent state for any number of reads.
  Snapshot snap = cluster.OpenSnapshot();
  Value v;
  if (snap.Get(accounts, 1, &v).ok()) {
    std::printf("backup get key 1   -> %s\n", v.c_str());
  }
  std::vector<Value> values;
  const auto statuses = snap.MultiGet(accounts, {1, 2, 3}, &values);
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    std::printf("backup multiget[%zu] -> %s\n", i,
                statuses[i].ok() ? values[i].c_str() : "(absent)");
  }
  std::printf("backup scan [0, 10):");
  for (auto it = snap.Scan(accounts, 0, 10); it.Valid(); it.Next()) {
    std::printf(" %llu=%.*s", static_cast<unsigned long long>(it.key()),
                static_cast<int>(it.value().size()), it.value().data());
  }
  std::printf("\n");

  std::printf("backup applied %llu writes, snapshot ts=%llu, lag bounded.\n",
              static_cast<unsigned long long>(
                  cluster.backup(0).reader().stats().applied_writes.load()),
              static_cast<unsigned long long>(snap.timestamp()));
  cluster.Shutdown();
  return 0;
}
