// Quickstart: a primary database executing transactions, an asynchronous
// backup running C5's cloned concurrency control, and a read-only query
// against the backup's monotonic-prefix-consistent snapshot.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/clock.h"
#include "core/c5_replica.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "storage/database.h"
#include "txn/mvtso_engine.h"

using namespace c5;

int main() {
  // --- Primary: an in-memory multi-version database with MVTSO concurrency
  // control, logging committed writes for replication.
  storage::Database primary;
  const TableId accounts = primary.CreateTable("accounts");

  TxnClock clock;
  log::OnlineLogCollector log_collector;
  txn::MvtsoEngine engine(&primary, &log_collector, &clock);
  // Online log sequencing needs a release horizon from the engine.
  log_collector.SetReleaseHorizon([&engine] { return engine.LogHorizon(); });

  // --- Backup: same schema, C5 replica consuming the shipped log.
  storage::Database backup;
  backup.CreateTable("accounts");

  log::ChannelSegmentSource source(&log_collector.channel());
  core::C5Replica replica(&backup, core::C5Replica::Options{.num_workers = 2});
  replica.Start(&source);

  // --- Execute read-write transactions on the primary.
  Status s = engine.ExecuteWithRetry([&](txn::Txn& txn) {
    Status st = txn.Insert(accounts, /*key=*/1, "alice:100");
    if (!st.ok()) return st;
    return txn.Insert(accounts, /*key=*/2, "bob:50");
  });
  std::printf("insert txn: %s\n", s.ToString().c_str());

  s = engine.ExecuteWithRetry([&](txn::Txn& txn) {
    // Transfer: read-modify-write both rows atomically.
    Value a, b;
    Status st = txn.ReadForUpdate(accounts, 1, &a);
    if (!st.ok()) return st;
    st = txn.ReadForUpdate(accounts, 2, &b);
    if (!st.ok()) return st;
    st = txn.Update(accounts, 1, "alice:70");
    if (!st.ok()) return st;
    return txn.Update(accounts, 2, "bob:80");
  });
  std::printf("transfer txn: %s\n", s.ToString().c_str());

  // --- Ship the log and wait for the backup to catch up.
  log_collector.Finish();
  replica.WaitUntilCaughtUp();

  // --- Read-only transactions on the backup observe a consistent snapshot.
  Value v;
  if (replica.ReadAtVisible(accounts, 1, &v).ok()) {
    std::printf("backup read key 1 -> %s\n", v.c_str());
  }
  if (replica.ReadAtVisible(accounts, 2, &v).ok()) {
    std::printf("backup read key 2 -> %s\n", v.c_str());
  }
  std::printf("backup applied %llu writes, snapshot ts=%llu, lag bounded.\n",
              static_cast<unsigned long long>(
                  replica.stats().applied_writes.load()),
              static_cast<unsigned long long>(replica.VisibleTimestamp()));
  replica.Stop();
  return 0;
}
