// Failover walkthrough, entirely through the c5::Cluster façade: a primary
// streams its log to two C5 backups; the primary "dies" mid-stream; backup
// A drains what it received and is promoted behind the same Cluster object
// — which keeps serving reads AND writes. CatchUpSurvivors then re-points
// the surviving backup B at the promoted node's log, so it follows the
// combined pre- and post-failover history.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/failover_demo

#include <cstdio>

#include "api/cluster.h"

using namespace c5;

int main() {
  Cluster cluster(ClusterOptions{}
                      .WithEngine(ha::EngineKind::kMvtso)
                      .WithBackups(2, core::ProtocolKind::kC5)
                      .WithWorkers(2));
  const TableId orders = cluster.CreateTable("orders");
  cluster.Start();

  // The primary commits orders 0..999, then crashes.
  for (std::uint64_t n = 0; n < 1000; ++n) {
    (void)cluster.ExecuteWithRetry([&](txn::Txn& txn) {
      return txn.Put(orders, n, "order-" + std::to_string(n));
    });
  }
  cluster.StopPrimary();  // nothing more will arrive on the channels
  std::printf("primary committed 1000 orders, then DIED.\n");

  // --- Failover: drain the fleet, promote backup A. Its clock continues
  // above every replicated commit, so new writes extend the same history.
  if (!cluster.Promote(0).ok()) return 1;
  std::printf("backup A drained (watermark ts=%llu) and was promoted (%s)\n",
              static_cast<unsigned long long>(
                  cluster.backup(0).VisibleTimestamp()),
              cluster.engine().name().c_str());

  // Old data is readable through the SAME Execute surface, and new writes
  // commit.
  for (std::uint64_t n = 1000; n < 1100; ++n) {
    (void)cluster.ExecuteWithRetry([&](txn::Txn& txn) {
      Value old_order;
      const Status st = txn.Read(orders, n - 1000, &old_order);
      if (!st.ok()) return st;  // read replicated state
      return txn.Put(orders, n, "order-" + std::to_string(n) + "-post");
    });
  }
  std::printf("promoted primary committed 100 post-failover orders\n");

  // --- Survivor B follows the promoted node's history: its clone restarts
  // in place over the new log; the combined history becomes visible.
  if (!cluster.CatchUpSurvivors().ok()) return 1;

  Snapshot snap = cluster.OpenSnapshot(1);
  Value v;
  const bool old_ok = snap.Get(orders, 42, &v).ok();
  std::printf("backup B read pre-failover order 42: %s (%s)\n",
              old_ok ? v.c_str() : "-", old_ok ? "ok" : "MISSING");
  const bool new_ok = snap.Get(orders, 1042, &v).ok();
  std::printf("backup B read post-failover order 1042: %s (%s)\n",
              new_ok ? v.c_str() : "-", new_ok ? "ok" : "MISSING");
  std::printf("backup B snapshot ts=%llu follows the promoted history\n",
              static_cast<unsigned long long>(snap.timestamp()));
  cluster.Shutdown();
  return (old_ok && new_ok) ? 0 : 1;
}
