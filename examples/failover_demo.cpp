// Failover walkthrough: a primary streams its log to a C5 backup; the
// primary "dies" mid-stream; the backup drains what it received, gets
// promoted (ha::PromoteToPrimary), and keeps serving reads AND writes. A
// second backup then re-points at the promoted node and follows the
// combined history (ha::ChainedSegmentSource).
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/failover_demo

#include <cstdio>

#include "common/clock.h"
#include "core/c5_replica.h"
#include "ha/promotion.h"
#include "ha/recovery.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "storage/database.h"
#include "txn/mvtso_engine.h"

using namespace c5;

int main() {
  // --- The original primary, streaming its log.
  storage::Database primary;
  const TableId orders = primary.CreateTable("orders");

  TxnClock clock;
  log::OnlineLogCollector collector;
  txn::MvtsoEngine engine(&primary, &collector, &clock);
  collector.SetReleaseHorizon([&engine] { return engine.LogHorizon(); });

  // --- Backup A: a C5 replica consuming the stream.
  storage::Database backup_a;
  backup_a.CreateTable("orders");
  log::ChannelSegmentSource source_a(&collector.channel());
  core::C5Replica replica_a(&backup_a,
                            core::C5Replica::Options{.num_workers = 2});
  replica_a.Start(&source_a);

  // The primary commits orders 0..999, then crashes.
  for (std::uint64_t n = 0; n < 1000; ++n) {
    (void)engine.ExecuteWithRetry([&](txn::Txn& txn) {
      return txn.Put(orders, n, "order-" + std::to_string(n));
    });
  }
  std::printf("primary committed 1000 orders, then DIED.\n");
  collector.Finish();  // the channel closes: nothing more will arrive

  // --- Failover step 1: drain everything that reached the backup.
  replica_a.WaitUntilCaughtUp();
  const Timestamp applied = replica_a.VisibleTimestamp();
  replica_a.Stop();
  std::printf("backup A drained its log; applied watermark ts=%llu\n",
              static_cast<unsigned long long>(applied));

  // --- Failover step 2: promote backup A. Its clock continues above every
  // replicated commit, so new writes extend the same history.
  auto promoted =
      ha::PromoteToPrimary(&backup_a, applied, ha::EngineKind::kMvtso);
  std::printf("backup A promoted to primary (%s engine)\n",
              promoted->engine->name().c_str());

  // Old data is readable, and new writes commit.
  for (std::uint64_t n = 1000; n < 1100; ++n) {
    (void)promoted->engine->ExecuteWithRetry([&](txn::Txn& txn) {
      Value old_order;
      const Status st = txn.Read(orders, n - 1000, &old_order);
      if (!st.ok()) return st;  // read replicated state
      return txn.Put(orders, n, "order-" + std::to_string(n) + "-post");
    });
  }
  std::printf("promoted primary committed 100 post-failover orders\n");

  // --- A new backup B joins after the failover. It bootstraps the way
  // deployments do: a physical snapshot of the promoted node's state at the
  // applied watermark, then the promoted node's log tail from there on.
  // (A backup that already held the old log prefix would instead use
  // ha::ResumeSegmentSource + ha::ChainedSegmentSource — see
  // tests/failover_test.cc's LaggingSurvivorResumesIntoNewHistory.)
  log::Log new_log = promoted->collector.Coalesce();

  storage::Database backup_b;
  backup_b.CreateTable("orders");
  // Physical bootstrap: copy backup A's rows at the applied watermark.
  {
    const auto guard_a = backup_a.epochs().Enter();
    storage::Table& src = backup_a.table(orders);
    storage::Table& dst = backup_b.table(orders);
    for (RowId r = 0; r < src.NumRows(); ++r) {
      const storage::Version* v = src.ReadAt(r, applied);
      if (v == nullptr) continue;
      dst.EnsureRow(r);
      dst.InstallCommitted(r, v->write_ts, v->value(), v->deleted);
    }
    for (std::uint64_t n = 0; n < 1000; ++n) {
      const auto row = backup_a.index(orders).Lookup(n);
      if (row.has_value()) backup_b.index(orders).Upsert(n, *row);
    }
  }
  log::OfflineSegmentSource tail(&new_log);
  core::C5Replica replica_b(&backup_b,
                            core::C5Replica::Options{.num_workers = 2});
  replica_b.Start(&tail);
  replica_b.WaitUntilCaughtUp();

  Value v;
  const bool old_ok = replica_b.ReadAtVisible(orders, 42, &v).ok();
  std::printf("backup B read pre-failover order 42: %s (%s)\n",
              old_ok ? v.c_str() : "-", old_ok ? "ok" : "MISSING");
  const bool new_ok = replica_b.ReadAtVisible(orders, 1042, &v).ok();
  std::printf("backup B read post-failover order 1042: %s (%s)\n",
              new_ok ? v.c_str() : "-", new_ok ? "ok" : "MISSING");
  std::printf("backup B snapshot ts=%llu follows the promoted history\n",
              static_cast<unsigned long long>(replica_b.VisibleTimestamp()));
  replica_b.Stop();
  return (old_ok && new_ok) ? 0 : 1;
}
