// Sharded quickstart: c5::ShardedCluster — N independent shard groups (each
// a full primary + log stream + backup fleet) behind one façade, with a
// ShardRouter owning key placement, closed-loop clients driving every shard
// concurrently, scatter-gather MultiGet, a cross-shard ordered Scan, and a
// session whose per-shard causality tokens give read-your-writes across the
// whole fleet.
//
//   cmake -B build && cmake --build build
//   ./build/example_sharded_quickstart
//
// C5_EXAMPLE_TXNS caps the per-client transaction count (the ctest smoke
// run sets a tiny value).

#include <cstdio>
#include <cstdlib>

#include "api/sharded_cluster.h"
#include "workload/runner.h"
#include "workload/synthetic.h"

using namespace c5;

int main() {
  const char* env = std::getenv("C5_EXAMPLE_TXNS");
  const std::uint64_t txns_per_client =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 2000;
  constexpr std::uint64_t kKeyspace = 1024;

  // --- Two shard groups, one backup each; the router hash-partitions the
  // keyspace between them.
  ShardedClusterOptions options;
  options.WithShards(2).WithRouterSeed(7);
  options.shard.WithBackups(1, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("kv", kKeyspace);
  fleet.Start();

  // --- Closed-loop clients per shard (workload::RunShardedClosedLoop): each
  // shard group has its own client population; every write routes through
  // the façade to the shard owning its key.
  const auto results = workload::RunShardedClosedLoop(
      fleet.num_shards(), /*clients_per_shard=*/2,
      std::chrono::milliseconds(0), txns_per_client,
      [&](std::size_t shard, std::uint32_t client, Rng& rng) {
        // Draw keys until one lands on OUR shard — each client population
        // writes only its own shard's slice of the keyspace.
        Key key = rng.Uniform(kKeyspace);
        while (fleet.ShardOf(t, key) != shard) key = rng.Uniform(kKeyspace);
        (void)client;
        return fleet.ExecuteWithRetry(t, key, [&](txn::Txn& txn) {
          return txn.Put(t, key, workload::EncodeIntValue(rng.Next()));
        });
      });
  for (std::size_t s = 0; s < results.size(); ++s) {
    std::printf("shard%zu: %llu committed (%.0f txns/s)\n", s,
                static_cast<unsigned long long>(results[s].committed),
                results[s].Throughput());
  }
  // --- Session with per-shard tokens (primaries still live):
  // read-your-writes wherever the key routes, without one laggard shard
  // stalling the others.
  Timestamp commit = 0;
  const Key hot = 42;
  (void)fleet.ExecuteWithRetry(
      t, hot,
      [&](txn::Txn& txn) {
        return txn.Put(t, hot, workload::EncodeIntValue(4242));
      },
      &commit);
  fleet.Flush();
  auto session = fleet.OpenSession();
  session.OnWrite(t, hot, commit);
  Value v;
  if (session.Read(t, hot, &v).ok()) {
    std::printf("session read key %llu on shard%zu -> %llu (token %llu)\n",
                static_cast<unsigned long long>(hot), fleet.ShardOf(t, hot),
                static_cast<unsigned long long>(workload::DecodeIntValue(v)),
                static_cast<unsigned long long>(
                    session.token(fleet.ShardOf(t, hot))));
  }

  fleet.WaitForBackups();

  // --- Scatter-gather MultiGet: keys grouped by owning shard, one pinned
  // snapshot per shard, results in caller order.
  std::vector<Value> values;
  const std::vector<Key> probe = {1, 2, 3, 4, 5};
  const auto statuses = fleet.MultiGet(t, probe, &values);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    std::printf("multiget key %llu (shard%zu) -> %s\n",
                static_cast<unsigned long long>(probe[i]),
                fleet.ShardOf(t, probe[i]),
                statuses[i].ok() ? "hit" : "absent");
  }

  // --- Cross-shard ordered Scan: per-shard slices k-way merged ascending.
  std::vector<std::pair<Key, Value>> rows;
  (void)fleet.Scan(t, 0, 64, &rows);
  std::printf("scan [0, 64): %zu live keys, ascending across shards\n",
              rows.size());

  // --- The routing invariant audits clean: every key lives where the
  // router says it lives.
  std::printf("placement audit: %zu violations\n",
              fleet.VerifyPlacement().size());
  fleet.Shutdown();
  return 0;
}
