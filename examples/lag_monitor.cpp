// Live replication-lag monitor: runs the adversarial workload (every
// transaction updates one hot row) against an online 2PL primary twice —
// once replicated through KuaFu (transaction granularity) and once through
// C5 — printing instantaneous lag twice per second. The KuaFu run visibly
// accumulates lag; the C5 run stays flat (§3 vs §4). Each run is one
// c5::Cluster with a lag tracker attached to its backup.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/lag_monitor
//
// C5_EXAMPLE_SECONDS overrides the per-protocol run time (default 4).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "api/cluster.h"
#include "workload/runner.h"
#include "workload/synthetic.h"

using namespace c5;

namespace {

int RunSeconds() {
  if (const char* s = std::getenv("C5_EXAMPLE_SECONDS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  return 4;
}

void RunOnce(core::ProtocolKind kind, int seconds) {
  replica::LagTracker lag(/*sample_every=*/16);
  ClusterOptions options;
  options.WithEngine(ha::EngineKind::kTwoPhaseLocking)
      .WithWorkers(4)
      .WithSegmentRecords(256)
      .AddBackup({.protocol = kind, .lag = &lag});
  Cluster cluster(options);
  const TableId table =
      cluster.CreateTable("synthetic", /*expected_keys=*/1 << 16);
  cluster.Start();

  workload::SyntheticWorkload wl(table, {.inserts_per_txn = 16,
                                         .adversarial = true});
  if (!wl.LoadHotRow(cluster.engine()).ok()) return;
  cluster.Flush();

  std::printf("\n--- protocol: %s ---\n", core::ToString(kind));
  std::printf("%8s %12s %14s\n", "t(s)", "lag(ms)", "pending txns");
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> commits{0};
  std::vector<std::thread> writers;
  std::vector<std::uint64_t> seqs(4, 0);
  for (int c = 0; c < 4; ++c) {
    writers.emplace_back([&, c] {
      Rng rng(c);
      while (!stop.load()) {
        if (wl.RunTxn(cluster.engine(), rng, c, &seqs[c]).ok()) {
          lag.RecordCommit(cluster.clock().Latest());
          commits.fetch_add(1);
        }
      }
    });
  }

  Stopwatch sw;
  for (int tick = 0; tick < seconds * 2; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    std::printf("%8.1f %12.1f %14zu\n", sw.ElapsedSeconds(),
                static_cast<double>(lag.CurrentLagNanos()) / 1e6,
                lag.PendingCount());
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  cluster.StopPrimary();
  cluster.WaitForBackups();
  std::printf("committed %llu txns; final lag 0 (caught up)\n",
              static_cast<unsigned long long>(commits.load()));
  cluster.Shutdown();
}

}  // namespace

int main() {
  const int seconds = RunSeconds();
  RunOnce(core::ProtocolKind::kKuaFu, seconds);
  RunOnce(core::ProtocolKind::kC5, seconds);
  return 0;
}
