// Live replication-lag monitor: runs the adversarial workload (every
// transaction updates one hot row) against an online 2PL primary twice —
// once replicated through KuaFu (transaction granularity) and once through
// C5 — printing instantaneous lag twice per second. The KuaFu run visibly
// accumulates lag; the C5 run stays flat (§3 vs §4).

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/clock.h"
#include "core/protocol_factory.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "replica/lag_tracker.h"
#include "storage/database.h"
#include "txn/two_phase_locking_engine.h"
#include "workload/runner.h"
#include "workload/synthetic.h"

using namespace c5;

namespace {

void RunOnce(core::ProtocolKind kind, int seconds) {
  storage::Database primary, backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&primary);
  workload::SyntheticWorkload::CreateTable(&backup);

  TxnClock clock;
  log::OnlineLogCollector collector(256);
  txn::TwoPhaseLockingEngine engine(&primary, &collector, &clock);
  collector.SetReleaseHorizon([&engine] { return engine.LogHorizon(); });

  workload::SyntheticWorkload wl(table, {.inserts_per_txn = 16,
                                         .adversarial = true});
  if (!wl.LoadHotRow(engine).ok()) return;
  collector.Flush();

  replica::LagTracker lag(/*sample_every=*/16);
  log::ChannelSegmentSource source(&collector.channel());
  auto rep = core::MakeReplica(kind, &backup,
                               core::ProtocolOptions{.num_workers = 4}, &lag);
  rep->Start(&source);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load()) {
      collector.Flush();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::printf("\n--- protocol: %s ---\n", core::ToString(kind));
  std::printf("%8s %12s %14s\n", "t(s)", "lag(ms)", "pending txns");
  std::atomic<std::uint64_t> commits{0};
  std::vector<std::thread> writers;
  std::vector<std::uint64_t> seqs(4, 0);
  for (int c = 0; c < 4; ++c) {
    writers.emplace_back([&, c] {
      Rng rng(c);
      while (!stop.load()) {
        if (wl.RunTxn(engine, rng, c, &seqs[c]).ok()) {
          lag.RecordCommit(clock.Latest());
          commits.fetch_add(1);
        }
      }
    });
  }

  Stopwatch sw;
  for (int tick = 0; tick < seconds * 2; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    std::printf("%8.1f %12.1f %14zu\n", sw.ElapsedSeconds(),
                static_cast<double>(lag.CurrentLagNanos()) / 1e6,
                lag.PendingCount());
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  flusher.join();
  collector.Finish();
  rep->WaitUntilCaughtUp();
  rep->Stop();
  std::printf("committed %llu txns; final lag 0 (caught up)\n",
              static_cast<unsigned long long>(commits.load()));
}

}  // namespace

int main() {
  RunOnce(core::ProtocolKind::kKuaFu, /*seconds=*/4);
  RunOnce(core::ProtocolKind::kC5, /*seconds=*/4);
  return 0;
}
