// The paper's motivating example (§2.1): a social platform stores videos
// (with a per-video comment counter) and comments. Posting a comment is a
// transaction: insert a comment row, then increment the video's counter.
// Many users comment on the same hot video concurrently — the exact pattern
// that produced unbounded lag at Meta (§8, live videos).
//
// This example runs that workload through a c5::Cluster — MVTSO primary, C5
// backup — and verifies monotonic prefix consistency on the backup while
// replication is in flight: at every Snapshot, the video's counter equals
// the number of visible comments, and neither ever goes backwards.

#include <atomic>
#include <cstdio>
#include <thread>

#include "api/cluster.h"
#include "workload/runner.h"
#include "workload/synthetic.h"

using namespace c5;

namespace {

constexpr TableId kVideos = 0;
constexpr TableId kComments = 1;
constexpr Key kHotVideo = 7;

Key CommentKey(std::uint32_t user, std::uint64_t n) {
  return (static_cast<Key>(user) << 40) | n;
}

}  // namespace

int main() {
  Cluster cluster(ClusterOptions{}
                      .WithEngine(ha::EngineKind::kMvtso)
                      .WithBackups(1, core::ProtocolKind::kC5)
                      .WithWorkers(2)
                      .WithSnapshotInterval(std::chrono::microseconds(200)));
  cluster.CreateTable("videos");
  cluster.CreateTable("comments");
  cluster.Start();

  // Seed the hot video with a zero comment counter.
  Status s = cluster.ExecuteWithRetry([](txn::Txn& txn) {
    return txn.Insert(kVideos, kHotVideo, workload::EncodeIntValue(0));
  });
  if (!s.ok()) return 1;
  cluster.Flush();

  // MPC checker on the backup, running during replication: the counter must
  // equal the number of visible comments and both must be monotonic. Every
  // iteration reads at ONE Snapshot — counter and comments from the same
  // consistent state.
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> checks{0};
  std::thread checker([&] {
    std::uint64_t last_count = 0;
    while (!stop.load()) {
      const Snapshot snap = cluster.OpenSnapshot();
      Value cv;
      if (!snap.Get(kVideos, kHotVideo, &cv).ok()) continue;
      const std::uint64_t count = workload::DecodeIntValue(cv);
      if (count < last_count) violation.store(true);  // counter regressed
      // Comments 1..count must all be visible; count+1 must not be.
      // (Spot-check the boundary: full scans every iteration are slow.)
      if (count > 0) {
        bool found = false;
        for (std::uint32_t u = 0; u < 4 && !found; ++u) {
          // comment n was written by SOME user; check via per-user keys.
          Value dummy;
          found = snap.Get(kComments, CommentKey(u, count), &dummy).ok();
        }
        if (!found) violation.store(true);  // counter ahead of comments
      }
      last_count = count;
      checks.fetch_add(1);
    }
  });

  // Four users comment concurrently on the same video.
  const auto result = workload::RunClosedLoop(
      4, std::chrono::milliseconds(1000), 0,
      [&](std::uint32_t user, Rng& rng) {
        (void)rng;
        return cluster.ExecuteWithRetry([user](txn::Txn& txn) {
          // Read the counter, insert the comment row for position n+1, then
          // increment the counter — one atomic transaction (§2.1).
          Value v;
          Status st = txn.Read(kVideos, kHotVideo, &v);
          if (!st.ok()) return st;
          const std::uint64_t n = workload::DecodeIntValue(v) + 1;
          st = txn.Insert(kComments, CommentKey(user, n),
                          "comment #" + std::to_string(n));
          if (!st.ok()) return st;
          return txn.Update(kVideos, kHotVideo, workload::EncodeIntValue(n));
        });
      });

  cluster.StopPrimary();
  cluster.WaitForBackups();
  stop.store(true);
  checker.join();

  // Final check: primary and backup agree on the counter.
  Value v;
  std::uint64_t final_count = 0;
  if (cluster.OpenSnapshot().Get(kVideos, kHotVideo, &v).ok()) {
    final_count = workload::DecodeIntValue(v);
  }
  std::printf("comments posted:        %llu\n",
              static_cast<unsigned long long>(result.committed));
  std::printf("backup counter:         %llu\n",
              static_cast<unsigned long long>(final_count));
  std::printf("MPC checks on backup:   %llu\n",
              static_cast<unsigned long long>(checks.load()));
  std::printf("MPC violations:         %s\n",
              violation.load() ? "VIOLATED" : "none");
  cluster.Shutdown();
  return violation.load() || final_count != result.committed ? 1 : 0;
}
