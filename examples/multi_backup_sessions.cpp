// Multi-backup session consistency (§2.3): one primary, two backups at very
// different lag, and a client that writes then reads. Raw reads against an
// arbitrary backup can miss the client's own write or travel back in time;
// a ClientSession with a token routes around the lagging backup and keeps
// reads monotonic.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/multi_backup_sessions

#include <cstdio>
#include <thread>

#include "common/clock.h"
#include "core/c5_replica.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "replica/session.h"
#include "storage/database.h"
#include "txn/mvtso_engine.h"
#include "workload/synthetic.h"

using namespace c5;

int main() {
  // --- Primary with two independent log streams (one per backup).
  storage::Database primary;
  const TableId posts = primary.CreateTable("posts");

  TxnClock clock;
  log::PerThreadLogCollector collector(/*segment_records=*/64);
  txn::MvtsoEngine engine(&primary, &collector, &clock);

  // The client publishes 500 posts; post key n carries version n.
  Timestamp my_last_commit = 0;
  for (std::uint64_t n = 0; n < 500; ++n) {
    (void)engine.ExecuteWithRetry([&](txn::Txn& txn) {
      const Status st =
          txn.Put(posts, n, "post-" + std::to_string(n));
      my_last_commit = txn.timestamp();
      return st;
    });
  }
  log::Log log = collector.Coalesce();
  std::printf("client wrote 500 posts; last commit ts=%llu\n",
              static_cast<unsigned long long>(my_last_commit));

  // Two private copies of the log (each backup consumes its own stream).
  auto copy_log = [&] {
    log::Log out;
    std::uint64_t seq = 0;
    for (std::size_t s = 0; s < log.NumSegments(); ++s) {
      auto seg = std::make_unique<log::LogSegment>(seq);
      for (const auto& rec : log.segment(s)->records()) seg->Append(rec);
      seq += seg->size();
      out.AppendSegment(std::move(seg));
    }
    return out;
  };
  log::Log log_fast = copy_log();
  log::Log log_slow = copy_log();

  // --- Backup FAST applies immediately; backup SLOW is gated at 20% (a
  // congested link, a stalled apply thread — any of §8's lag sources).
  storage::Database db_fast, db_slow;
  db_fast.CreateTable("posts");
  db_slow.CreateTable("posts");
  log::OfflineSegmentSource src_fast(&log_fast);
  log::GatedSegmentSource src_slow(&log_slow, log_slow.NumSegments() / 5);

  core::C5Replica fast(&db_fast, core::C5Replica::Options{.num_workers = 2});
  core::C5Replica slow(&db_slow, core::C5Replica::Options{.num_workers = 2});
  fast.Start(&src_fast);
  slow.Start(&src_slow);
  fast.WaitUntilCaughtUp();
  std::printf("backup FAST at ts=%llu; backup SLOW gated at ts=%llu\n",
              static_cast<unsigned long long>(fast.VisibleTimestamp()),
              static_cast<unsigned long long>(slow.VisibleTimestamp()));

  replica::BackupSet fleet;
  fleet.Add(&fast);
  fleet.Add(&slow);

  // --- WITHOUT a session: reading "my" newest post from whichever backup
  // the load balancer picks silently returns nothing on the laggard.
  Value v;
  const bool raw_fast = fast.ReadAtVisible(posts, 499, &v).ok();
  const bool raw_slow = slow.ReadAtVisible(posts, 499, &v).ok();
  std::printf("raw read of post 499: FAST=%s SLOW=%s  <- the §2.3 problem\n",
              raw_fast ? "ok" : "missing", raw_slow ? "ok" : "missing");

  // --- WITH a session: the client's token (its last commit) makes the
  // laggard ineligible; the read lands on FAST.
  replica::ClientSession session(
      &fleet, {.policy = replica::RoutingPolicy::kTokenRouted});
  session.OnWrite(my_last_commit);
  const Status s = session.Read(posts, 499, &v);
  std::printf("session read of post 499: %s (%s) via backup %s\n",
              s.ok() ? v.c_str() : "-", s.ok() ? "ok" : "missing",
              session.stats().reads_per_backup[0] > 0 ? "FAST" : "SLOW");

  // --- Monotonic reads while the laggard catches up: alternating reads
  // never observe an older post set than before.
  src_slow.Open();
  std::uint64_t found = 0, last_found = 0;
  bool regressed = false;
  for (int round = 0; round < 50; ++round) {
    found = 0;
    for (std::uint64_t n = 0; n < 500; n += 25) {
      if (session.Read(posts, n, &v).ok()) ++found;
    }
    if (found < last_found) regressed = true;
    last_found = found;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  slow.WaitUntilCaughtUp();
  std::printf("alternating session reads during catch-up: %s\n",
              regressed ? "REGRESSED (bug!)" : "never regressed");
  std::printf("final read distribution: FAST=%llu SLOW=%llu (token %llu)\n",
              static_cast<unsigned long long>(
                  session.stats().reads_per_backup[0]),
              static_cast<unsigned long long>(
                  session.stats().reads_per_backup[1]),
              static_cast<unsigned long long>(session.token()));

  fast.Stop();
  slow.Stop();
  return (s.ok() && !regressed && !raw_slow) ? 0 : 1;
}
