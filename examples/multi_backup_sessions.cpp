// Multi-backup session consistency (§2.3): one primary, two backups at very
// different lag, and a client that writes then reads. Raw reads against an
// arbitrary backup can miss the client's own write or travel back in time;
// a session opened through the Cluster façade carries a token that routes
// around the lagging backup and keeps reads monotonic.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/multi_backup_sessions

#include <cstdio>

#include "api/cluster.h"

using namespace c5;

int main() {
  // --- One primary, two C5 backups: FAST applies immediately, SLOW sits
  // behind an injected 10ms-per-segment shipping delay (a congested link, a
  // stalled apply thread — any of §8's lag sources).
  ClusterOptions options;
  options.WithEngine(ha::EngineKind::kMvtso)
      .WithWorkers(2)
      .WithSegmentRecords(64)
      .AddBackup({.protocol = core::ProtocolKind::kC5})
      .AddBackup({.protocol = core::ProtocolKind::kC5,
                  .ship_delay = std::chrono::microseconds(10000)});
  Cluster cluster(options);
  const TableId posts = cluster.CreateTable("posts");
  cluster.Start();

  // The client publishes 500 posts; post key n carries version n.
  Timestamp my_last_commit = 0;
  for (std::uint64_t n = 0; n < 500; ++n) {
    (void)cluster.ExecuteWithRetry(
        [&](txn::Txn& txn) {
          return txn.Put(posts, n, "post-" + std::to_string(n));
        },
        &my_last_commit);
  }
  cluster.Flush();
  std::printf("client wrote 500 posts; last commit ts<=%llu\n",
              static_cast<unsigned long long>(my_last_commit));

  // Give FAST a head start so the fleet is visibly spread.
  while (cluster.backup(0).VisibleTimestamp() < my_last_commit) {
  }
  std::printf("backup FAST at ts=%llu; backup SLOW lagging at ts=%llu\n",
              static_cast<unsigned long long>(
                  cluster.backup(0).VisibleTimestamp()),
              static_cast<unsigned long long>(
                  cluster.backup(1).VisibleTimestamp()));

  // --- WITHOUT a session: reading "my" newest post from whichever backup
  // the load balancer picks silently returns nothing on the laggard.
  Value v;
  const bool raw_fast =
      cluster.OpenSnapshot(0).Get(posts, 499, &v).ok();
  const bool raw_slow =
      cluster.OpenSnapshot(1).Get(posts, 499, &v).ok();
  std::printf("raw read of post 499: FAST=%s SLOW=%s  <- the §2.3 problem\n",
              raw_fast ? "ok" : "missing", raw_slow ? "ok" : "missing");

  // --- WITH a session: the client's token (its last commit) makes the
  // laggard ineligible; the read lands on FAST.
  auto session = cluster.OpenSession();
  session.OnWrite(my_last_commit);
  const Status s = session.Read(posts, 499, &v);
  std::printf("session read of post 499: %s (%s) via backup %s\n",
              s.ok() ? v.c_str() : "-", s.ok() ? "ok" : "missing",
              session.stats().reads_per_backup[0] > 0 ? "FAST" : "SLOW");

  // --- Monotonic reads while the laggard catches up: alternating session
  // reads (point, multi-get, and range scans) never observe an older post
  // set than before.
  std::uint64_t last_found = 0;
  bool regressed = false;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::pair<Key, Value>> page;
    if (!session.Scan(posts, 0, 500, &page).ok()) continue;
    if (page.size() < last_found) regressed = true;
    last_found = page.size();
  }
  cluster.StopPrimary();
  cluster.WaitForBackups();
  std::printf("alternating session reads during catch-up: %s\n",
              regressed ? "REGRESSED (bug!)" : "never regressed");
  std::printf("final read distribution: FAST=%llu SLOW=%llu (token %llu)\n",
              static_cast<unsigned long long>(
                  session.stats().reads_per_backup[0]),
              static_cast<unsigned long long>(
                  session.stats().reads_per_backup[1]),
              static_cast<unsigned long long>(session.token()));

  cluster.Shutdown();
  return (s.ok() && !regressed && !raw_slow) ? 0 : 1;
}
