// TPC-C order-entry demo through the c5::Cluster façade: loads a warehouse,
// runs a mixed NewOrder/Payment load on a 2PL primary while the log streams
// LIVE to a C5-MyRocks backup, and checks the application-level invariant
// on the backup's snapshot (every allocated order id has its ORDER row —
// the §2.3 "comment counter matches comments" property, TPC-C flavored).
//
// C5_EXAMPLE_TXNS overrides the benchmark transaction count (default 2500).

#include <cstdio>
#include <cstdlib>

#include "api/cluster.h"
#include "workload/runner.h"
#include "workload/tpcc.h"

using namespace c5;
using namespace c5::workload::tpcc;

int main() {
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 10;
  cfg.customers_per_district = 300;
  cfg.items = 1000;
  cfg.optimized = true;  // §6.1 contention-deferring op order

  std::uint64_t txns = 2500;
  if (const char* t = std::getenv("C5_EXAMPLE_TXNS")) {
    const long long n = std::atoll(t);
    if (n > 0) txns = static_cast<std::uint64_t>(n);
  }

  Cluster cluster(ClusterOptions{}
                      .WithEngine(ha::EngineKind::kTwoPhaseLocking)
                      .WithBackups(1, core::ProtocolKind::kC5MyRocks)
                      .WithWorkers(4));
  for (const auto& spec : TableSpecs(&cfg)) {
    cluster.CreateTable(spec.name, spec.expected_keys);
  }
  cluster.Start();

  std::printf("loading TPC-C (W=%u, D=%u, C=%u, I=%u)...\n", cfg.warehouses,
              cfg.districts_per_warehouse, cfg.customers_per_district,
              cfg.items);
  const std::uint64_t rows = Load(cluster.engine(), cfg);
  std::printf("loaded %llu rows (replicating live)\n",
              static_cast<unsigned long long>(rows));

  const auto result = workload::RunClosedLoop(
      4, std::chrono::milliseconds(0), txns,
      [&](std::uint32_t client, Rng& rng) {
        (void)client;
        return rng.Uniform(2) == 0
                   ? RunNewOrder(cluster.engine(), rng, cfg, 1)
                   : RunPayment(cluster.engine(), rng, cfg, 1);
      });
  std::printf("primary: %llu commits, %llu rollbacks, %.0f txn/s\n",
              static_cast<unsigned long long>(result.committed),
              static_cast<unsigned long long>(result.cancelled),
              result.Throughput());

  // The primary retires; the backup drains the in-flight tail.
  Stopwatch drain;
  cluster.StopPrimary();
  cluster.WaitForBackups();
  const double drain_secs = drain.ElapsedSeconds();

  auto& stats = cluster.backup(0).reader().stats();
  std::printf("backup: applied %llu writes / %llu txns live; final drain "
              "took %.3fs\n",
              static_cast<unsigned long long>(stats.applied_writes.load()),
              static_cast<unsigned long long>(stats.applied_txns.load()),
              drain_secs);

  const Snapshot snap = cluster.OpenSnapshot();
  bool ok = true;
  for (std::uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
    ok = ok && CheckDistrictOrderInvariant(cluster.backup(0).db(), cfg, 1, d,
                                           snap.timestamp());
  }
  std::printf("district/order invariant on backup snapshot: %s\n",
              ok ? "holds" : "VIOLATED");
  cluster.Shutdown();
  return ok ? 0 : 1;
}
