// TPC-C order-entry demo: loads a warehouse, runs a mixed NewOrder/Payment
// load on a 2PL primary, replicates the log through C5-MyRocks, and checks
// the application-level invariant on the backup (every allocated order id
// has its ORDER row — the §2.3 "comment counter matches comments" property,
// TPC-C flavored).

#include <cstdio>

#include "common/clock.h"
#include "core/c5_myrocks_replica.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "storage/database.h"
#include "txn/two_phase_locking_engine.h"
#include "workload/runner.h"
#include "workload/tpcc.h"

using namespace c5;
using namespace c5::workload::tpcc;

int main() {
  storage::Database primary, backup;
  CreateTables(&primary);
  CreateTables(&backup);

  TxnClock clock;
  log::PerThreadLogCollector collector;
  txn::TwoPhaseLockingEngine engine(&primary, &collector, &clock);

  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 10;
  cfg.customers_per_district = 300;
  cfg.items = 1000;
  cfg.optimized = true;  // §6.1 contention-deferring op order

  std::printf("loading TPC-C (W=%u, D=%u, C=%u, I=%u)...\n", cfg.warehouses,
              cfg.districts_per_warehouse, cfg.customers_per_district,
              cfg.items);
  const std::uint64_t rows = Load(engine, cfg);
  std::printf("loaded %llu rows\n", static_cast<unsigned long long>(rows));

  Stopwatch sw;
  const auto result = workload::RunClosedLoop(
      4, std::chrono::milliseconds(0), 2500,
      [&](std::uint32_t client, Rng& rng) {
        (void)client;
        return rng.Uniform(2) == 0 ? RunNewOrder(engine, rng, cfg, 1)
                                   : RunPayment(engine, rng, cfg, 1);
      });
  std::printf("primary: %llu commits, %llu rollbacks, %.0f txn/s\n",
              static_cast<unsigned long long>(result.committed),
              static_cast<unsigned long long>(result.cancelled),
              result.Throughput());

  // Replicate the whole history (load + benchmark) offline.
  log::Log log = collector.Coalesce();
  log::OfflineSegmentSource source(&log);
  core::C5MyRocksReplica replica(
      &backup, core::C5MyRocksReplica::Options{.num_workers = 4});
  Stopwatch replay;
  replica.Start(&source);
  replica.WaitUntilCaughtUp();
  const double replay_secs = replay.ElapsedSeconds();
  replica.Stop();

  std::printf("backup: applied %llu writes / %llu txns in %.2fs (%.0f txn/s)\n",
              static_cast<unsigned long long>(
                  replica.stats().applied_writes.load()),
              static_cast<unsigned long long>(
                  replica.stats().applied_txns.load()),
              replay_secs,
              static_cast<double>(replica.stats().applied_txns.load()) /
                  replay_secs);

  bool ok = true;
  for (std::uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
    ok = ok && CheckDistrictOrderInvariant(backup, cfg, 1, d,
                                           replica.VisibleTimestamp());
  }
  std::printf("district/order invariant on backup snapshot: %s\n",
              ok ? "holds" : "VIOLATED");
  return ok ? 0 : 1;
}
