#include "common/rng.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

#include <map>
#include <set>

namespace c5 {
namespace {

TEST(RngTest, DeterministicForSeed) {
  const std::uint64_t seed = test::TestSeed(123);
  Rng a(seed), b(seed);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  const std::uint64_t seed = test::TestSeed(1);
  Rng a(seed), b(seed + 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(test::TestSeed(5));
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(37), 37u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(test::TestSeed(5));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(test::TestSeed(9));
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.UniformRange(10, 15);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 15u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 15);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRangeSingleton) {
  Rng rng(test::TestSeed(11));
  EXPECT_EQ(rng.UniformRange(7, 7), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(test::TestSeed(13));
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NURandWithinRange) {
  Rng rng(test::TestSeed(17));
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.NURand(1023, 1, 3000, 259);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(RngTest, NURandIsNonUniform) {
  // NURand should produce a visibly skewed distribution versus uniform:
  // its collision mass concentrates on fewer hot values.
  Rng rng(test::TestSeed(19));
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 30000; ++i) counts[rng.NURand(255, 1, 1000, 7)]++;
  int max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  // Uniform expectation is 30 per value; NURand's peak must exceed it well.
  EXPECT_GT(max_count, 60);
}

TEST(RngTest, RoughUniformity) {
  Rng rng(test::TestSeed(23));
  int buckets[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[rng.Uniform(10)]++;
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 10 * 0.1);
  }
}

}  // namespace
}  // namespace c5
