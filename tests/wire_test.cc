// Wire format and file-backed log archive: roundtrip fidelity, CRC
// corruption detection, torn-tail (crash) semantics, and replay of an
// archive through a replica.

#include "log/wire.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/protocol_factory.h"
#include "log/log_file.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

using log::DecodeSegment;
using log::EncodeSegment;
using log::LogSegment;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::unique_ptr<LogSegment> MakeSegment(std::uint64_t base_seq,
                                        int records) {
  auto seg = std::make_unique<LogSegment>(base_seq);
  for (int i = 0; i < records; ++i) {
    log::LogRecord rec;
    rec.table = static_cast<TableId>(i % 3);
    rec.op = static_cast<OpType>(i % 3);
    rec.last_in_txn = (i % 4) == 3 || i == records - 1;
    rec.row = 1000 + i;
    rec.key = 77000 + i;
    rec.commit_ts = base_seq + i + 1;
    const std::string value = std::string("value-") + std::to_string(i) +
                              std::string(i % 7, 'x');  // varied lengths
    rec.value = value;  // Append internalizes the bytes before `value` dies
    seg->Append(rec);
  }
  return seg;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  unsigned char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  // "123456789" -> 0xE3069283 (standard check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(WireTest, RoundTripsAllFields) {
  const auto seg_ptr = MakeSegment(42, 25);
  const LogSegment& seg = *seg_ptr;
  std::string bytes;
  EncodeSegment(seg, &bytes);

  std::size_t consumed = 0;
  std::unique_ptr<LogSegment> decoded;
  ASSERT_TRUE(DecodeSegment(bytes, &consumed, &decoded).ok());
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_EQ(decoded->size(), seg.size());
  EXPECT_EQ(decoded->base_seq(), seg.base_seq());
  for (std::size_t i = 0; i < seg.size(); ++i) {
    const auto& a = seg.record(i);
    const auto& b = decoded->record(i);
    EXPECT_EQ(a.table, b.table);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.last_in_txn, b.last_in_txn);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.commit_ts, b.commit_ts);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(b.prev_ts, kInvalidTimestamp)
        << "prev_ts must be backup-computed, never shipped";
  }
}

TEST(WireTest, EmptySegmentRoundTrips) {
  const LogSegment seg(7);
  std::string bytes;
  EncodeSegment(seg, &bytes);
  std::size_t consumed = 0;
  std::unique_ptr<LogSegment> decoded;
  ASSERT_TRUE(DecodeSegment(bytes, &consumed, &decoded).ok());
  EXPECT_EQ(decoded->size(), 0u);
  EXPECT_EQ(decoded->base_seq(), 7u);
}

TEST(WireTest, DetectsEverySingleBitFlipInHeaderAndPayload) {
  const auto seg_ptr = MakeSegment(1, 4);
  const LogSegment& seg = *seg_ptr;
  std::string bytes;
  EncodeSegment(seg, &bytes);

  // Flip one bit at a time; decoding must never silently yield a segment
  // that differs from the original (it may legitimately succeed when the
  // flip is detected-equivalent — it cannot be, since every byte is load-
  // bearing here: magic, lengths, CRC, or CRC-covered payload).
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::string corrupt = bytes;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x10);
    std::size_t consumed = 0;
    std::unique_ptr<LogSegment> decoded;
    const Status s = DecodeSegment(corrupt, &consumed, &decoded);
    if (s.ok()) {
      // A flip in base_seq's bytes is outside the CRC; it must still decode
      // the payload correctly. Anything else must fail.
      ASSERT_GE(byte, 4u);
      ASSERT_LT(byte, 12u) << "undetected corruption at byte " << byte;
      EXPECT_NE(decoded->base_seq(), seg.base_seq());
    }
  }
}

// Fuzz-style exhaustive corruption: flip EVERY bit of EVERY byte of a valid
// frame. Decode must either fail cleanly or — for the CRC-uncovered
// base_seq field — succeed with only base_seq changed. No outcome may read
// out of bounds or otherwise invoke UB (the ASan lane in scripts/check.sh
// runs this loop with instrumentation).
TEST(WireTest, EveryBitFlipRejectsOrIsBaseSeqOnly) {
  const auto seg_ptr = MakeSegment(3, 6);
  std::string bytes;
  EncodeSegment(*seg_ptr, &bytes);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::size_t consumed = 0;
      std::unique_ptr<LogSegment> decoded;
      const Status s = DecodeSegment(corrupt, &consumed, &decoded);
      if (!s.ok()) continue;
      ASSERT_GE(byte, 4u) << "corrupt magic accepted (byte " << byte << ")";
      ASSERT_LT(byte, 12u) << "undetected payload/CRC corruption at byte "
                           << byte << " bit " << bit;
      EXPECT_NE(decoded->base_seq(), seg_ptr->base_seq());
      ASSERT_EQ(decoded->size(), seg_ptr->size());
      for (std::size_t i = 0; i < decoded->size(); ++i) {
        EXPECT_EQ(decoded->record(i).value, seg_ptr->record(i).value);
      }
    }
  }
}

// Hostile frames with a VALID CRC: the checksum covers the payload, so a
// malicious/buggy sender can still ship internally inconsistent frames.
// The decoder's structural validation — not the CRC — must reject each one
// without reading out of bounds.
TEST(WireTest, ValidCrcHostileStructureIsRejected) {
  // Helper: frame up an arbitrary payload with a correct header + CRC.
  const auto frame = [](std::uint64_t base_seq, std::uint32_t record_count,
                        const std::string& payload) {
    std::string out;
    const auto put32 = [&out](std::uint32_t v) {
      out.append(reinterpret_cast<const char*>(&v), 4);
    };
    const auto put64 = [&out](std::uint64_t v) {
      out.append(reinterpret_cast<const char*>(&v), 8);
    };
    put32(log::kSegmentMagic);
    put64(base_seq);
    put32(record_count);
    put32(static_cast<std::uint32_t>(payload.size()));
    put32(Crc32c(payload.data(), payload.size()));
    out += payload;
    return out;
  };
  const auto reject = [](const std::string& bytes, const char* what) {
    std::size_t consumed = 0;
    std::unique_ptr<LogSegment> decoded;
    const Status s = DecodeSegment(bytes, &consumed, &decoded);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << what;
  };

  // Record-layout offsets, derived from the format documented in wire.h:
  // table u32, op u8, last_in_txn u8, row u64, key u64, commit_ts u64,
  // value_len u32, value bytes.
  constexpr std::size_t kOpOffset = sizeof(std::uint32_t);
  constexpr std::size_t kValueLenOffset =
      sizeof(std::uint32_t) + 2 * sizeof(std::uint8_t) +
      3 * sizeof(std::uint64_t);
  // payload_len sits after magic (u32) + base_seq (u64) + record_count (u32).
  constexpr std::size_t kPayloadLenOffset =
      2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);

  // One well-formed record payload to mutate.
  std::string rec;
  {
    const auto seg = MakeSegment(0, 1);
    std::string full;
    EncodeSegment(*seg, &full);
    rec = full.substr(log::kSegmentHeaderBytes);
  }

  // record_count larger than the records present: decoder must hit the
  // payload end, not read past it.
  reject(frame(0, 1000, rec), "record_count overruns payload");
  // record_count smaller: trailing bytes must be rejected, not ignored.
  reject(frame(0, 0, rec), "trailing bytes accepted");
  // value_len pointing far past the payload (valid CRC over the lie).
  {
    std::string lie = rec;
    const std::uint32_t huge = 0x7FFFFFFF;
    std::memcpy(lie.data() + kValueLenOffset, &huge, sizeof(huge));
    reject(frame(0, 1, lie), "value_len overruns payload");
  }
  // Unknown op code with a valid CRC.
  {
    std::string lie = rec;
    lie[kOpOffset] = 7;
    reject(frame(0, 1, lie), "unknown op accepted");
  }
  // Payload length field beyond the hard cap.
  {
    std::string bytes = frame(0, 1, rec);
    const std::uint32_t huge = (300u << 20);
    std::memcpy(bytes.data() + kPayloadLenOffset, &huge, sizeof(huge));
    reject(bytes, "implausible payload length accepted");
  }
}

TEST(WireTest, TruncationIsTornTail) {
  const auto seg_ptr = MakeSegment(1, 10);
  std::string bytes;
  EncodeSegment(*seg_ptr, &bytes);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{23},
        bytes.size() - 1}) {
    std::size_t consumed = 0;
    std::unique_ptr<LogSegment> decoded;
    const Status s =
        DecodeSegment(std::string_view(bytes).substr(0, keep), &consumed,
                      &decoded);
    EXPECT_FALSE(s.ok()) << "keep=" << keep;
  }
}

TEST(LogFileTest, WriteReadRoundTrip) {
  const std::string path = TempPath("c5_wire_roundtrip.log");
  {
    log::LogFileWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (int s = 0; s < 5; ++s) {
      ASSERT_TRUE(writer.Append(*MakeSegment(s * 100, 20)).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  log::ReadLogResult result;
  ASSERT_TRUE(log::ReadLogFile(path, &result).ok());
  EXPECT_TRUE(result.clean_end);
  EXPECT_EQ(result.log.NumSegments(), 5u);
  EXPECT_EQ(result.log.NumRecords(), 100u);
  std::filesystem::remove(path);
}

TEST(LogFileTest, TornTailKeepsValidPrefix) {
  const std::string path = TempPath("c5_wire_torn.log");
  {
    log::LogFileWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (int s = 0; s < 4; ++s) {
      ASSERT_TRUE(writer.Append(*MakeSegment(s * 100, 20)).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  // Truncate mid-way through the last frame (the crash shape).
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 13);

  log::ReadLogResult result;
  ASSERT_TRUE(log::ReadLogFile(path, &result).ok());
  EXPECT_FALSE(result.clean_end);
  EXPECT_EQ(result.log.NumSegments(), 3u) << "valid prefix preserved";
  std::filesystem::remove(path);
}

TEST(LogFileTest, MissingFileIsNotFound) {
  log::ReadLogResult result;
  EXPECT_EQ(log::ReadLogFile(TempPath("c5_wire_nonexistent.log"), &result)
                .code(),
            StatusCode::kNotFound);
}

// End to end: a real primary's log goes through the wire format to disk,
// is read back, and replays through C5 to the primary's exact state.
TEST(LogFileTest, ArchivedLogReplaysToIdenticalState) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/200);
  const std::string path = TempPath("c5_wire_replay.log");
  {
    log::LogFileWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
      ASSERT_TRUE(writer.Append(*run.log.segment(s)).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }

  log::ReadLogResult archive;
  ASSERT_TRUE(log::ReadLogFile(path, &archive).ok());
  ASSERT_TRUE(archive.clean_end);
  ASSERT_EQ(archive.log.NumRecords(), run.log.NumRecords());

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log::OfflineSegmentSource source(&archive.log);
  auto replica = core::MakeReplica(core::ProtocolKind::kC5, &backup,
                                   {.num_workers = 4});
  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  replica->Stop();

  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp));
  std::filesystem::remove(path);
}

// ---- FrameReassembler: segment frames torn across arbitrary stream reads ---

// Checks that `got` decoded identically to `want` (the reassembler hands
// back a private segment; field-for-field equality is the contract).
void ExpectSegmentsEqual(const LogSegment& got, const LogSegment& want) {
  ASSERT_EQ(got.base_seq(), want.base_seq());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.record(i).table, want.record(i).table);
    EXPECT_EQ(got.record(i).op, want.record(i).op);
    EXPECT_EQ(got.record(i).key, want.record(i).key);
    EXPECT_EQ(got.record(i).commit_ts, want.record(i).commit_ts);
    EXPECT_EQ(got.record(i).value, want.record(i).value);
  }
}

TEST(FrameReassemblerTest, OneByteAtATimeDecodesEveryFrame) {
  // The pathological slicing: every read delivers a single byte, so every
  // frame is torn at every possible offset along the way.
  std::string stream;
  std::vector<std::unique_ptr<LogSegment>> sent;
  std::uint64_t base = 0;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(MakeSegment(base, 3 + i));
    base += sent.back()->size();
    EncodeSegment(*sent.back(), &stream);
  }

  log::FrameReassembler reasm;
  std::vector<std::unique_ptr<LogSegment>> got;
  for (const char byte : stream) {
    reasm.Append(&byte, 1);
    for (;;) {
      std::unique_ptr<LogSegment> seg;
      const Status s = reasm.Poll(&seg);
      if (s.ok()) {
        got.push_back(std::move(seg));
        continue;
      }
      // Mid-frame the verdict must always be "need more", never corruption.
      ASSERT_EQ(s.code(), StatusCode::kNotFound) << s.ToString();
      break;
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    ExpectSegmentsEqual(*got[i], *sent[i]);
  }
  EXPECT_EQ(reasm.buffered_bytes(), 0u);
}

TEST(FrameReassemblerTest, RandomSlicingDecodesEveryFrame) {
  const std::uint64_t seed = test::TestSeed(7);
  Rng rng(seed);
  std::string stream;
  std::vector<std::unique_ptr<LogSegment>> sent;
  std::uint64_t base = 0;
  for (int i = 0; i < 12; ++i) {
    sent.push_back(MakeSegment(base, 1 + static_cast<int>(rng.Uniform(20))));
    base += sent.back()->size();
    EncodeSegment(*sent.back(), &stream);
  }

  log::FrameReassembler reasm;
  std::vector<std::unique_ptr<LogSegment>> got;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.Uniform(97), stream.size() - off);
    reasm.Append(stream.data() + off, n);
    off += n;
    for (;;) {
      std::unique_ptr<LogSegment> seg;
      const Status s = reasm.Poll(&seg);
      if (s.ok()) {
        got.push_back(std::move(seg));
        continue;
      }
      ASSERT_EQ(s.code(), StatusCode::kNotFound);
      break;
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    ExpectSegmentsEqual(*got[i], *sent[i]);
  }
}

TEST(FrameReassemblerTest, CorruptionVerdictIsDefinitiveNotTorn) {
  std::string frame;
  EncodeSegment(*MakeSegment(0, 8), &frame);
  // Flip one payload byte: CRC must reject — but only once the frame is
  // fully buffered. Any prefix is indistinguishable from a torn frame and
  // must stay kNotFound.
  frame[log::kSegmentHeaderBytes + 2] =
      static_cast<char>(frame[log::kSegmentHeaderBytes + 2] ^ 0x40);

  log::FrameReassembler reasm;
  std::unique_ptr<LogSegment> seg;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reasm.Append(&frame[i], 1);
    ASSERT_EQ(reasm.Poll(&seg).code(), StatusCode::kNotFound)
        << "premature verdict at byte " << i;
  }
  reasm.Append(&frame[frame.size() - 1], 1);
  EXPECT_EQ(reasm.Poll(&seg).code(), StatusCode::kInvalidArgument);
  // Nothing was consumed: the caller decides how to resync.
  EXPECT_EQ(reasm.buffered_bytes(), frame.size());
}

TEST(FrameReassemblerTest, ForeignMagicIsImmediatelyInvalid) {
  log::FrameReassembler reasm;
  const char junk[] = {'n', 'o', 'p', 'e'};
  reasm.Append(junk, sizeof(junk));
  std::unique_ptr<LogSegment> seg;
  EXPECT_EQ(reasm.Poll(&seg).code(), StatusCode::kInvalidArgument);
}

TEST(FrameReassemblerTest, SkipToMagicResyncsPastGarbageAndSplitMagic) {
  std::string clean;
  const auto want = MakeSegment(5, 4);
  EncodeSegment(*want, &clean);

  log::FrameReassembler reasm;
  // Garbage, then a valid frame. Feed the garbage plus only the first TWO
  // bytes of the frame: the magic itself is torn across reads, and the
  // 3-byte tail retention must still find it after the next Append.
  std::string garbage = "this is definitely not a segment frame";
  reasm.Append(garbage.data(), garbage.size());
  reasm.Append(clean.data(), 2);
  EXPECT_FALSE(reasm.SkipToMagic(log::kSegmentMagic));
  reasm.Append(clean.data() + 2, clean.size() - 2);
  ASSERT_TRUE(reasm.SkipToMagic(log::kSegmentMagic));

  std::unique_ptr<LogSegment> seg;
  ASSERT_TRUE(reasm.Poll(&seg).ok());
  ExpectSegmentsEqual(*seg, *want);
  EXPECT_EQ(reasm.buffered_bytes(), 0u);
}

TEST(FrameReassemblerTest, ConsumeAndBufferedExposeForeignFrames) {
  // A foreign (control) frame interleaved between segments: the caller
  // parses it via Buffered() and drops it with Consume(), and decoding
  // resumes cleanly.
  std::string stream;
  const auto first = MakeSegment(0, 3);
  EncodeSegment(*first, &stream);
  const std::string control = "CTRL-FRAME-16b!!";
  stream += control;
  const auto second = MakeSegment(first->size(), 2);
  EncodeSegment(*second, &stream);

  log::FrameReassembler reasm;
  reasm.Append(stream.data(), stream.size());

  std::unique_ptr<LogSegment> seg;
  ASSERT_TRUE(reasm.Poll(&seg).ok());
  ExpectSegmentsEqual(*seg, *first);
  ASSERT_EQ(reasm.Poll(&seg).code(), StatusCode::kInvalidArgument)
      << "control frame must not decode as a segment";
  ASSERT_GE(reasm.Buffered().size(), control.size());
  EXPECT_EQ(reasm.Buffered().substr(0, control.size()), control);
  reasm.Consume(control.size());
  ASSERT_TRUE(reasm.Poll(&seg).ok());
  ExpectSegmentsEqual(*seg, *second);
}

}  // namespace
}  // namespace c5
