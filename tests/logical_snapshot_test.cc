// Tests for the paper's Table 2 logical storage interface, realized
// explicitly by storage::LogicalSnapshot. These also model-check the
// snapshotter's rotation invariant (§4.2): merging the current and next
// snapshots yields a prefix-complete snapshot.

#include "storage/logical_snapshot.h"

#include <gtest/gtest.h>

namespace c5::storage {
namespace {

TEST(LogicalSnapshotTest, NewSnapshotIsEmpty) {
  const LogicalSnapshot s = LogicalSnapshot::NewSnapshot();
  EXPECT_TRUE(s.Empty());
  EXPECT_FALSE(s.Read(0, 1).has_value());
}

TEST(LogicalSnapshotTest, InsertThenRead) {
  LogicalSnapshot s;
  s.Insert(0, 1, "v1");
  ASSERT_TRUE(s.Read(0, 1).has_value());
  EXPECT_EQ(*s.Read(0, 1), "v1");
}

TEST(LogicalSnapshotTest, UpdateOverwrites) {
  LogicalSnapshot s;
  s.Insert(0, 1, "v1");
  s.Update(0, 1, "v2");
  EXPECT_EQ(*s.Read(0, 1), "v2");
  EXPECT_EQ(s.WriteCount(), 2u);  // the sequence keeps both writes
}

TEST(LogicalSnapshotTest, DeleteHidesRow) {
  LogicalSnapshot s;
  s.Insert(0, 1, "v1");
  s.Delete(0, 1);
  EXPECT_FALSE(s.Read(0, 1).has_value());
}

TEST(LogicalSnapshotTest, ReadRangeIsSortedHalfOpenAndSkipsDeleted) {
  LogicalSnapshot s;
  s.Insert(0, 9, "a");
  s.Insert(0, 3, "b");
  s.Insert(0, 27, "c");
  s.Insert(0, 12, "d");
  s.Insert(1, 10, "other-table");
  s.Delete(0, 12);

  const auto range = s.ReadRange(0, 3, 27);  // [3, 27): excludes 27 and 12
  ASSERT_EQ(range.size(), 2u);
  EXPECT_EQ(range[0], (std::pair<Key, Value>{3, "b"}));
  EXPECT_EQ(range[1], (std::pair<Key, Value>{9, "a"}));
  EXPECT_TRUE(s.ReadRange(0, 100, 200).empty());
  // Tables are disjoint key spaces.
  ASSERT_EQ(s.ReadRange(1, 0, 100).size(), 1u);
}

TEST(LogicalSnapshotTest, TablesAreIndependent) {
  LogicalSnapshot s;
  s.Insert(0, 1, "t0");
  s.Insert(1, 1, "t1");
  EXPECT_EQ(*s.Read(0, 1), "t0");
  EXPECT_EQ(*s.Read(1, 1), "t1");
}

TEST(LogicalSnapshotTest, MergeOrdersS1BeforeS2) {
  // Table 2: "S3 reflects all writes to both, with all writes in S1 ordered
  // before those in S2" — S2's writes win on conflict.
  LogicalSnapshot s1, s2;
  s1.Insert(0, 1, "from_s1");
  s1.Insert(0, 2, "only_s1");
  s2.Update(0, 1, "from_s2");
  s2.Insert(0, 3, "only_s2");

  const LogicalSnapshot s3 =
      LogicalSnapshot::Merge(std::move(s1), std::move(s2));
  EXPECT_EQ(*s3.Read(0, 1), "from_s2");
  EXPECT_EQ(*s3.Read(0, 2), "only_s1");
  EXPECT_EQ(*s3.Read(0, 3), "only_s2");
  EXPECT_EQ(s3.WriteCount(), 4u);
}

TEST(LogicalSnapshotTest, MergeWithEmptyIsIdentity) {
  LogicalSnapshot s1;
  s1.Insert(0, 1, "x");
  LogicalSnapshot merged =
      LogicalSnapshot::Merge(std::move(s1), LogicalSnapshot::NewSnapshot());
  EXPECT_EQ(*merged.Read(0, 1), "x");
  LogicalSnapshot merged2 =
      LogicalSnapshot::Merge(LogicalSnapshot::NewSnapshot(),
                             std::move(merged));
  EXPECT_EQ(*merged2.Read(0, 1), "x");
}

TEST(LogicalSnapshotTest, MergeDeleteInS2Wins) {
  LogicalSnapshot s1, s2;
  s1.Insert(0, 1, "x");
  s2.Delete(0, 1);
  const LogicalSnapshot s3 =
      LogicalSnapshot::Merge(std::move(s1), std::move(s2));
  EXPECT_FALSE(s3.Read(0, 1).has_value());
}

TEST(LogicalSnapshotTest, MergeIsAssociativeOnState) {
  // (A + B) + C state-equals A + (B + C): the snapshotter may rotate
  // snapshots in any grouping without changing the exposed state.
  auto make = [](int tag) {
    LogicalSnapshot s;
    s.Insert(0, 1, "v" + std::to_string(tag));
    s.Insert(0, 10 + tag, "u");
    return s;
  };
  const LogicalSnapshot left = LogicalSnapshot::Merge(
      LogicalSnapshot::Merge(make(1), make(2)), make(3));
  const LogicalSnapshot right = LogicalSnapshot::Merge(
      make(1), LogicalSnapshot::Merge(make(2), make(3)));
  EXPECT_TRUE(left.StateEquals(right));
  EXPECT_EQ(*left.Read(0, 1), "v3");
}

TEST(LogicalSnapshotTest, SnapshotterRotationModel) {
  // Model §4.2's rotation: writes with seq <= c are in current, (c, n] in
  // next, > n in future. After a rotation, current reflects the longer
  // prefix — exactly the serial application of the log.
  LogicalSnapshot current, next, future, reference;
  // Log of 9 writes to 3 rows.
  for (int i = 1; i <= 9; ++i) {
    const Key row = i % 3;
    const Value v = "w" + std::to_string(i);
    reference.Update(0, row, v);
    if (i <= 3) {
      current.Update(0, row, v);
    } else if (i <= 6) {
      next.Update(0, row, v);
    } else {
      future.Update(0, row, v);
    }
  }
  // Rotation 1: current' = merge(current, next); next' = future.
  current = LogicalSnapshot::Merge(std::move(current), std::move(next));
  next = std::move(future);
  // Rotation 2.
  current = LogicalSnapshot::Merge(std::move(current), std::move(next));
  EXPECT_TRUE(current.StateEquals(reference));
}

TEST(LogicalSnapshotTest, StateEqualsDetectsDifference) {
  LogicalSnapshot a, b;
  a.Insert(0, 1, "x");
  b.Insert(0, 1, "y");
  EXPECT_FALSE(a.StateEquals(b));
  b.Update(0, 1, "x");
  EXPECT_TRUE(a.StateEquals(b));
}

}  // namespace
}  // namespace c5::storage
