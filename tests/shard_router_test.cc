// Property tests for ShardRouter (common/shard_router.h), the single source
// of truth for key -> shard-group routing: the mapping is deterministic and
// total, load stays balanced across shards over random and sequential key
// sets, scatter grouping is a faithful partition, and table-aware routing
// keeps every TPC-C warehouse's rows on one shard.

#include "common/shard_router.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "tests/test_util.h"
#include "workload/tpcc.h"
#include "workload/tpcc_schema.h"

namespace c5 {
namespace {

TEST(ShardRouterTest, RoutingIsDeterministicAndTotal) {
  Rng rng(test::TestSeed(201));
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    const std::uint64_t seed = rng.Next();
    ShardRouter a(shards, seed);
    ShardRouter b(shards, seed);  // independent instance, same parameters
    for (int i = 0; i < 2000; ++i) {
      const Key key = rng.Next();
      const std::size_t s = a.ShardOf(/*table=*/0, key);
      // Total: every key maps into [0, shards).
      ASSERT_LT(s, shards);
      // Deterministic: the mapping is a pure function of (shards, seed,
      // table, key) — across calls and across router instances.
      EXPECT_EQ(s, a.ShardOf(0, key));
      EXPECT_EQ(s, b.ShardOf(0, key));
    }
  }
}

TEST(ShardRouterTest, SeedActuallyPerturbsPlacement) {
  ShardRouter a(4, /*seed=*/1);
  ShardRouter b(4, /*seed=*/2);
  int moved = 0;
  for (Key k = 0; k < 1000; ++k) {
    if (a.ShardOf(0, k) != b.ShardOf(0, k)) ++moved;
  }
  // Independent placements agree on ~1/4 of keys; all-equal would mean the
  // seed is dead weight.
  EXPECT_GT(moved, 500);
}

TEST(ShardRouterTest, DistributionStaysWithinBoundsOverRandomKeySets) {
  Rng rng(test::TestSeed(202));
  for (const std::size_t shards : {2u, 4u, 8u}) {
    ShardRouter router(shards, rng.Next());
    constexpr int kKeys = 100000;
    std::vector<int> random_load(shards, 0), sequential_load(shards, 0);
    for (int i = 0; i < kKeys; ++i) {
      ++random_load[router.ShardOf(0, rng.Next())];
      ++sequential_load[router.ShardOf(0, static_cast<Key>(i))];
    }
    // Binomial sd at p=1/shards, n=100k is a few hundred; +/-10% of the
    // uniform share is > 20 sd — failures mean broken mixing, not noise.
    const double share = static_cast<double>(kKeys) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GT(random_load[s], 0.9 * share) << shards << " shards, shard " << s;
      EXPECT_LT(random_load[s], 1.1 * share) << shards << " shards, shard " << s;
      // Sequential keys (the common dense-id layout) must spread too: the
      // router hashes, it does not range-partition.
      EXPECT_GT(sequential_load[s], 0.9 * share) << "sequential, shard " << s;
      EXPECT_LT(sequential_load[s], 1.1 * share) << "sequential, shard " << s;
    }
  }
}

TEST(ShardRouterTest, GroupByShardIsAFaithfulPartition) {
  Rng rng(test::TestSeed(203));
  ShardRouter router(4, rng.Next());
  std::vector<Key> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.Next());
  const auto groups = router.GroupByShard(0, keys);
  ASSERT_EQ(groups.size(), 4u);
  std::set<std::size_t> seen;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    for (const std::size_t i : groups[s]) {
      EXPECT_EQ(router.ShardOf(0, keys[i]), s);
      EXPECT_TRUE(seen.insert(i).second) << "position " << i << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), keys.size()) << "positions lost in grouping";
}

// The table-aware contract for TPC-C: a warehouse's rows — across every
// warehouse-scoped table and the full district/customer/order/stock key
// ranges — land on ONE shard, the warehouse's own.
TEST(ShardRouterTest, TpccWarehouseRowsStayOnOneShard) {
  namespace tpcc = workload::tpcc;
  Rng rng(test::TestSeed(204));
  ShardRouter router(4, rng.Next());
  tpcc::ConfigureShardRouter(&router);

  std::vector<int> shard_of_warehouse(4, 0);
  for (std::uint32_t w = 1; w <= 64; ++w) {
    const std::size_t home = tpcc::ShardOfWarehouse(router, w);
    ++shard_of_warehouse[home];
    EXPECT_EQ(router.ShardOf(tpcc::kWarehouse, tpcc::WarehouseKey(w)), home);
    for (std::uint32_t d = 1; d <= 10; ++d) {
      EXPECT_EQ(router.ShardOf(tpcc::kDistrict, tpcc::DistrictKey(w, d)),
                home);
      // Random points across the (wide) per-district id spaces.
      for (int i = 0; i < 8; ++i) {
        const auto c = static_cast<std::uint32_t>(rng.UniformRange(1, 3000));
        const auto o = static_cast<std::uint32_t>(rng.UniformRange(1, 100000));
        const auto ol = static_cast<std::uint32_t>(rng.Uniform(15));
        EXPECT_EQ(router.ShardOf(tpcc::kCustomer, tpcc::CustomerKey(w, d, c)),
                  home);
        EXPECT_EQ(router.ShardOf(tpcc::kOrder, tpcc::OrderKey(w, d, o)), home);
        EXPECT_EQ(router.ShardOf(tpcc::kNewOrder, tpcc::NewOrderKey(w, d, o)),
                  home);
        EXPECT_EQ(router.ShardOf(tpcc::kOrderLine,
                                 tpcc::OrderLineKey(w, d, o, ol)),
                  home);
      }
    }
    for (int i = 0; i < 16; ++i) {
      const auto item = static_cast<std::uint32_t>(rng.UniformRange(1, 10000));
      EXPECT_EQ(router.ShardOf(tpcc::kStock, tpcc::StockKey(w, item)), home);
    }
  }
  // Warehouses themselves must spread: every shard owns some of the 64.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(shard_of_warehouse[s], 0) << "shard " << s << " owns nothing";
  }
}

// LoadShard populates each shard group's primary with exactly its own
// warehouses' scoped rows — and the full item catalog on every shard (the
// read-only catalog is replicated so NewOrder's item reads stay local).
TEST(ShardRouterTest, TpccLoadShardPartitionsWarehousesAndReplicatesItems) {
  namespace tpcc = workload::tpcc;
  ShardRouter router(2, test::TestSeed(205));
  tpcc::ConfigureShardRouter(&router);
  tpcc::TpccConfig cfg;
  cfg.warehouses = 6;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 5;
  cfg.items = 40;

  std::vector<std::unique_ptr<test::Primary>> shards;
  for (std::size_t s = 0; s < 2; ++s) {
    auto p = test::Primary::Mvtso();
    tpcc::CreateTables(&p->db);
    tpcc::LoadShard(*p->engine, cfg, router, s);
    shards.push_back(std::move(p));
  }

  for (std::uint32_t w = 1; w <= cfg.warehouses; ++w) {
    const std::size_t home = tpcc::ShardOfWarehouse(router, w);
    for (std::size_t s = 0; s < 2; ++s) {
      const bool owned = s == home;
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kWarehouse)
                    .Lookup(tpcc::WarehouseKey(w))
                    .has_value(),
                owned)
          << "warehouse " << w << " on shard " << s;
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kDistrict)
                    .Lookup(tpcc::DistrictKey(w, 1))
                    .has_value(),
                owned);
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kCustomer)
                    .Lookup(tpcc::CustomerKey(w, 1, 1))
                    .has_value(),
                owned);
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kStock)
                    .Lookup(tpcc::StockKey(w, 1))
                    .has_value(),
                owned);
    }
  }
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(shards[s]->db.index(tpcc::kItem).Size(), cfg.items)
        << "the item catalog must be replicated on shard " << s;
  }
}

// ---- Epochs (live resharding) ----------------------------------------------

// Applying the same plan sequence to two independent routers yields the
// same epochs and the same total routing: the placement history is a pure
// function of (shards, seed, extractors, committed plans) — never call
// order — and every key maps to exactly one shard at EVERY epoch,
// including future epochs (which clamp to the present).
TEST(ShardRouterTest, PlanApplicationIsDeterministicAndTotal) {
  Rng rng(test::TestSeed(206));
  const std::uint64_t seed = rng.Next();
  constexpr std::size_t kShards = 4;
  ShardRouter a(kShards, seed);
  ShardRouter b(kShards, seed);

  for (int round = 0; round < 8; ++round) {
    // A batch of single-key moves off each token's current owner.
    MigrationPlan plan;
    for (int m = 0; m < 5; ++m) {
      ShardMove move;
      move.table = 0;
      move.token = rng.Uniform(256);
      move.from = a.RouteTokenAt(a.CurrentEpoch(), 0, move.token);
      move.to = (move.from + 1 + rng.Uniform(kShards - 1)) % kShards;
      // Skip duplicate tokens within the batch (ValidatePlan rejects them).
      bool dup = false;
      for (const ShardMove& prior : plan) dup |= prior.token == move.token;
      if (!dup) plan.push_back(move);
    }
    ASSERT_TRUE(a.ValidatePlan(plan).ok());
    ASSERT_TRUE(b.ValidatePlan(plan).ok());
    EXPECT_EQ(a.CommitPlan(plan), b.CommitPlan(plan));
  }
  ASSERT_EQ(a.CurrentEpoch(), b.CurrentEpoch());

  for (int i = 0; i < 2000; ++i) {
    const Key key = rng.Next();
    // +2 past the current epoch: the future routes like the present.
    for (ShardRouter::Epoch e = 0; e <= a.CurrentEpoch() + 2; ++e) {
      const std::size_t s = a.RouteAt(e, 0, key);
      ASSERT_LT(s, kShards);
      EXPECT_EQ(s, a.RouteAt(e, 0, key));  // repeatable
      EXPECT_EQ(s, b.RouteAt(e, 0, key));  // instance-independent
    }
    EXPECT_EQ(a.ShardOf(0, key), a.RouteAt(a.CurrentEpoch(), 0, key));
  }
}

// Old epochs are immutable history: once epoch e+1 exists, RouteAt(e, ...)
// answers the same forever, no matter how many more plans commit.
TEST(ShardRouterTest, RouteAtIsStableForOldEpochs) {
  Rng rng(test::TestSeed(207));
  constexpr std::size_t kShards = 3;
  ShardRouter router(kShards, rng.Next());
  std::vector<Key> probes;
  for (int i = 0; i < 300; ++i) probes.push_back(rng.Uniform(512));

  // Snapshot the full routing table after each committed epoch...
  std::vector<std::vector<std::size_t>> history;
  const auto snapshot = [&] {
    std::vector<std::size_t> routes;
    for (const Key k : probes) {
      routes.push_back(router.RouteAt(router.CurrentEpoch(), 0, k));
    }
    history.push_back(std::move(routes));
  };
  snapshot();  // epoch 0
  for (int round = 0; round < 6; ++round) {
    const std::uint64_t token = rng.Uniform(512);
    ShardMove move;
    move.table = 0;
    move.token = token;
    move.from = router.RouteTokenAt(router.CurrentEpoch(), 0, token);
    move.to = (move.from + 1) % kShards;
    ASSERT_TRUE(router.ValidatePlan({move}).ok());
    router.CommitPlan({move});
    snapshot();
  }
  // ... then re-ask every historical epoch: the answers must be frozen.
  ASSERT_EQ(history.size(), router.CurrentEpoch() + 1);
  for (ShardRouter::Epoch e = 0; e < history.size(); ++e) {
    for (std::size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(router.RouteAt(e, 0, probes[i]), history[e][i])
          << "epoch " << e << " probe key " << probes[i];
    }
  }
}

// ValidatePlan is the gate on every malformed plan shape; the fence is
// exact (moving tokens only), exclusive (one at a time), and cleared by
// both CommitPlan and AbortFence — with AbortFence leaving the epoch alone.
TEST(ShardRouterTest, PlanValidationAndFenceLifecycle) {
  ShardRouter router(3, test::TestSeed(208));
  const std::uint64_t token = 42;
  const std::size_t owner = router.RouteTokenAt(0, 0, token);
  const auto move = [&](std::size_t from, std::size_t to) {
    ShardMove m;
    m.table = 0;
    m.token = token;
    m.from = from;
    m.to = to;
    return m;
  };

  EXPECT_FALSE(router.ValidatePlan({}).ok()) << "empty plan";
  EXPECT_FALSE(router.ValidatePlan({move(owner, owner)}).ok()) << "from==to";
  EXPECT_FALSE(router.ValidatePlan({move(owner, 7)}).ok()) << "no such shard";
  const std::size_t not_owner = (owner + 1) % 3;
  EXPECT_FALSE(router.ValidatePlan({move(not_owner, owner)}).ok())
      << "from must be the token's current owner";
  const MigrationPlan dup = {move(owner, (owner + 1) % 3),
                             move(owner, (owner + 2) % 3)};
  EXPECT_FALSE(router.ValidatePlan(dup).ok()) << "duplicate token";
  router.MarkUnpartitioned(1);
  ShardMove unpart = move(owner, (owner + 1) % 3);
  unpart.table = 1;
  unpart.from = router.RouteTokenAt(0, 1, token);
  unpart.to = (unpart.from + 1) % 3;
  EXPECT_FALSE(router.ValidatePlan({unpart}).ok())
      << "unpartitioned tables cannot migrate";

  const MigrationPlan ok_plan = {move(owner, (owner + 1) % 3)};
  ASSERT_TRUE(router.ValidatePlan(ok_plan).ok());

  // Fence lifecycle: exact membership, exclusivity, abort leaves epoch 0.
  ASSERT_FALSE(router.HasFence());
  ASSERT_TRUE(router.BeginFence(ok_plan).ok());
  EXPECT_TRUE(router.HasFence());
  EXPECT_TRUE(router.IsFenced(0, token));
  EXPECT_FALSE(router.IsFenced(0, token + 1)) << "fence must be exact";
  EXPECT_FALSE(router.IsFenced(1, token)) << "fence is per-table";
  EXPECT_FALSE(router.BeginFence(ok_plan).ok()) << "one fence at a time";
  router.AbortFence();
  EXPECT_FALSE(router.HasFence());
  EXPECT_FALSE(router.IsFenced(0, token));
  EXPECT_EQ(router.CurrentEpoch(), 0u) << "abort must not bump the epoch";
  EXPECT_EQ(router.ShardOf(0, token), owner) << "abort must not move tokens";

  // Commit clears the fence AND installs the new placement.
  ASSERT_TRUE(router.BeginFence(ok_plan).ok());
  EXPECT_EQ(router.CommitPlan(ok_plan), 1u);
  EXPECT_FALSE(router.HasFence());
  EXPECT_EQ(router.ShardOf(0, token), (owner + 1) % 3);
  EXPECT_EQ(router.RouteAt(0, 0, token), owner) << "epoch 0 is history";
}

// Random warehouse-migration sequences never orphan or dual-own a TPC-C
// warehouse's scoped keys: after every committed WarehouseMovePlan, each
// warehouse's rows — across all seven warehouse-scoped tables — route to
// EXACTLY ONE shard at the current epoch (the plan's destination for moved
// warehouses), at every epoch along the way.
TEST(ShardRouterTest, RandomWarehouseMovesNeverOrphanOrDualOwnScopedKeys) {
  namespace tpcc = workload::tpcc;
  Rng rng(test::TestSeed(209));
  constexpr std::size_t kShards = 3;
  constexpr std::uint32_t kWarehouses = 12;
  ShardRouter router(kShards, rng.Next());
  tpcc::ConfigureShardRouter(&router);

  // The scoped sample for one warehouse: representative keys from every
  // warehouse-scoped table (the full ranges are covered by the epoch-0
  // test above; here the property under test is epoch evolution).
  const auto scoped_keys = [&](std::uint32_t w) {
    std::vector<std::pair<TableId, Key>> keys;
    keys.emplace_back(tpcc::kWarehouse, tpcc::WarehouseKey(w));
    for (std::uint32_t d = 1; d <= 3; ++d) {
      keys.emplace_back(tpcc::kDistrict, tpcc::DistrictKey(w, d));
      keys.emplace_back(tpcc::kCustomer, tpcc::CustomerKey(w, d, 1 + d));
      keys.emplace_back(tpcc::kOrder, tpcc::OrderKey(w, d, 17 * d));
      keys.emplace_back(tpcc::kNewOrder, tpcc::NewOrderKey(w, d, 17 * d));
      keys.emplace_back(tpcc::kOrderLine,
                        tpcc::OrderLineKey(w, d, 17 * d, d));
    }
    keys.emplace_back(tpcc::kStock, tpcc::StockKey(w, 1 + (w % 100)));
    return keys;
  };
  const auto audit = [&] {
    for (std::uint32_t w = 1; w <= kWarehouses; ++w) {
      const std::size_t home = tpcc::ShardOfWarehouse(router, w);
      ASSERT_LT(home, kShards) << "warehouse " << w << " orphaned";
      for (const auto& [table, key] : scoped_keys(w)) {
        ASSERT_EQ(router.ShardOf(table, key), home)
            << "warehouse " << w << " table " << table
            << " split across shards at epoch " << router.CurrentEpoch();
      }
    }
  };

  audit();  // epoch 0
  for (int round = 0; round < 24; ++round) {
    const std::uint32_t w =
        1 + static_cast<std::uint32_t>(rng.Uniform(kWarehouses));
    const std::size_t from = tpcc::ShardOfWarehouse(router, w);
    const std::size_t to = (from + 1 + rng.Uniform(kShards - 1)) % kShards;
    const MigrationPlan plan = tpcc::WarehouseMovePlan(router, w, to);
    ASSERT_TRUE(router.ValidatePlan(plan).ok()) << "round " << round;
    router.CommitPlan(plan);
    EXPECT_EQ(tpcc::ShardOfWarehouse(router, w), to);
    audit();
  }
  EXPECT_EQ(router.CurrentEpoch(), 24u);
}

}  // namespace
}  // namespace c5
