// Property tests for ShardRouter (common/shard_router.h), the single source
// of truth for key -> shard-group routing: the mapping is deterministic and
// total, load stays balanced across shards over random and sequential key
// sets, scatter grouping is a faithful partition, and table-aware routing
// keeps every TPC-C warehouse's rows on one shard.

#include "common/shard_router.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "tests/test_util.h"
#include "workload/tpcc.h"
#include "workload/tpcc_schema.h"

namespace c5 {
namespace {

TEST(ShardRouterTest, RoutingIsDeterministicAndTotal) {
  Rng rng(test::TestSeed(201));
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    const std::uint64_t seed = rng.Next();
    ShardRouter a(shards, seed);
    ShardRouter b(shards, seed);  // independent instance, same parameters
    for (int i = 0; i < 2000; ++i) {
      const Key key = rng.Next();
      const std::size_t s = a.ShardOf(/*table=*/0, key);
      // Total: every key maps into [0, shards).
      ASSERT_LT(s, shards);
      // Deterministic: the mapping is a pure function of (shards, seed,
      // table, key) — across calls and across router instances.
      EXPECT_EQ(s, a.ShardOf(0, key));
      EXPECT_EQ(s, b.ShardOf(0, key));
    }
  }
}

TEST(ShardRouterTest, SeedActuallyPerturbsPlacement) {
  ShardRouter a(4, /*seed=*/1);
  ShardRouter b(4, /*seed=*/2);
  int moved = 0;
  for (Key k = 0; k < 1000; ++k) {
    if (a.ShardOf(0, k) != b.ShardOf(0, k)) ++moved;
  }
  // Independent placements agree on ~1/4 of keys; all-equal would mean the
  // seed is dead weight.
  EXPECT_GT(moved, 500);
}

TEST(ShardRouterTest, DistributionStaysWithinBoundsOverRandomKeySets) {
  Rng rng(test::TestSeed(202));
  for (const std::size_t shards : {2u, 4u, 8u}) {
    ShardRouter router(shards, rng.Next());
    constexpr int kKeys = 100000;
    std::vector<int> random_load(shards, 0), sequential_load(shards, 0);
    for (int i = 0; i < kKeys; ++i) {
      ++random_load[router.ShardOf(0, rng.Next())];
      ++sequential_load[router.ShardOf(0, static_cast<Key>(i))];
    }
    // Binomial sd at p=1/shards, n=100k is a few hundred; +/-10% of the
    // uniform share is > 20 sd — failures mean broken mixing, not noise.
    const double share = static_cast<double>(kKeys) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GT(random_load[s], 0.9 * share) << shards << " shards, shard " << s;
      EXPECT_LT(random_load[s], 1.1 * share) << shards << " shards, shard " << s;
      // Sequential keys (the common dense-id layout) must spread too: the
      // router hashes, it does not range-partition.
      EXPECT_GT(sequential_load[s], 0.9 * share) << "sequential, shard " << s;
      EXPECT_LT(sequential_load[s], 1.1 * share) << "sequential, shard " << s;
    }
  }
}

TEST(ShardRouterTest, GroupByShardIsAFaithfulPartition) {
  Rng rng(test::TestSeed(203));
  ShardRouter router(4, rng.Next());
  std::vector<Key> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.Next());
  const auto groups = router.GroupByShard(0, keys);
  ASSERT_EQ(groups.size(), 4u);
  std::set<std::size_t> seen;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    for (const std::size_t i : groups[s]) {
      EXPECT_EQ(router.ShardOf(0, keys[i]), s);
      EXPECT_TRUE(seen.insert(i).second) << "position " << i << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), keys.size()) << "positions lost in grouping";
}

// The table-aware contract for TPC-C: a warehouse's rows — across every
// warehouse-scoped table and the full district/customer/order/stock key
// ranges — land on ONE shard, the warehouse's own.
TEST(ShardRouterTest, TpccWarehouseRowsStayOnOneShard) {
  namespace tpcc = workload::tpcc;
  Rng rng(test::TestSeed(204));
  ShardRouter router(4, rng.Next());
  tpcc::ConfigureShardRouter(&router);

  std::vector<int> shard_of_warehouse(4, 0);
  for (std::uint32_t w = 1; w <= 64; ++w) {
    const std::size_t home = tpcc::ShardOfWarehouse(router, w);
    ++shard_of_warehouse[home];
    EXPECT_EQ(router.ShardOf(tpcc::kWarehouse, tpcc::WarehouseKey(w)), home);
    for (std::uint32_t d = 1; d <= 10; ++d) {
      EXPECT_EQ(router.ShardOf(tpcc::kDistrict, tpcc::DistrictKey(w, d)),
                home);
      // Random points across the (wide) per-district id spaces.
      for (int i = 0; i < 8; ++i) {
        const auto c = static_cast<std::uint32_t>(rng.UniformRange(1, 3000));
        const auto o = static_cast<std::uint32_t>(rng.UniformRange(1, 100000));
        const auto ol = static_cast<std::uint32_t>(rng.Uniform(15));
        EXPECT_EQ(router.ShardOf(tpcc::kCustomer, tpcc::CustomerKey(w, d, c)),
                  home);
        EXPECT_EQ(router.ShardOf(tpcc::kOrder, tpcc::OrderKey(w, d, o)), home);
        EXPECT_EQ(router.ShardOf(tpcc::kNewOrder, tpcc::NewOrderKey(w, d, o)),
                  home);
        EXPECT_EQ(router.ShardOf(tpcc::kOrderLine,
                                 tpcc::OrderLineKey(w, d, o, ol)),
                  home);
      }
    }
    for (int i = 0; i < 16; ++i) {
      const auto item = static_cast<std::uint32_t>(rng.UniformRange(1, 10000));
      EXPECT_EQ(router.ShardOf(tpcc::kStock, tpcc::StockKey(w, item)), home);
    }
  }
  // Warehouses themselves must spread: every shard owns some of the 64.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(shard_of_warehouse[s], 0) << "shard " << s << " owns nothing";
  }
}

// LoadShard populates each shard group's primary with exactly its own
// warehouses' scoped rows — and the full item catalog on every shard (the
// read-only catalog is replicated so NewOrder's item reads stay local).
TEST(ShardRouterTest, TpccLoadShardPartitionsWarehousesAndReplicatesItems) {
  namespace tpcc = workload::tpcc;
  ShardRouter router(2, test::TestSeed(205));
  tpcc::ConfigureShardRouter(&router);
  tpcc::TpccConfig cfg;
  cfg.warehouses = 6;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 5;
  cfg.items = 40;

  std::vector<std::unique_ptr<test::Primary>> shards;
  for (std::size_t s = 0; s < 2; ++s) {
    auto p = test::Primary::Mvtso();
    tpcc::CreateTables(&p->db);
    tpcc::LoadShard(*p->engine, cfg, router, s);
    shards.push_back(std::move(p));
  }

  for (std::uint32_t w = 1; w <= cfg.warehouses; ++w) {
    const std::size_t home = tpcc::ShardOfWarehouse(router, w);
    for (std::size_t s = 0; s < 2; ++s) {
      const bool owned = s == home;
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kWarehouse)
                    .Lookup(tpcc::WarehouseKey(w))
                    .has_value(),
                owned)
          << "warehouse " << w << " on shard " << s;
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kDistrict)
                    .Lookup(tpcc::DistrictKey(w, 1))
                    .has_value(),
                owned);
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kCustomer)
                    .Lookup(tpcc::CustomerKey(w, 1, 1))
                    .has_value(),
                owned);
      EXPECT_EQ(shards[s]
                    ->db.index(tpcc::kStock)
                    .Lookup(tpcc::StockKey(w, 1))
                    .has_value(),
                owned);
    }
  }
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(shards[s]->db.index(tpcc::kItem).Size(), cfg.items)
        << "the item catalog must be replicated on shard " << s;
  }
}

}  // namespace
}  // namespace c5
