// Tests for the debug lock-rank registry (common/lock_rank.h).
//
// Built WITHOUT c5_core (see CMakeLists.txt): only the detector sources,
// so scripts/check.sh can cheaply rebuild this one target in Release mode
// and prove the compiled-out contract (the #else branch below).
//
// The violation tests are death tests: every rule breach must abort the
// process with a "[lock_rank]" diagnostic, deterministically — that is the
// whole point of the detector (a rank inversion is a deadlock that has not
// happened yet; aborting in any interleaving beats hanging in one).

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/spin_lock.h"

namespace c5 {
namespace {

#if C5_LOCK_RANK_ENABLED

TEST(LockRankTest, CleanNestingPasses) {
  SpinLock outer(LockRank::kClusterState);
  Mutex mid(LockRank::kCollector);
  SpinLock inner(LockRank::kArenaFree);
  {
    SpinLockGuard g1(outer);
    MutexLock g2(mid);
    SpinLockGuard g3(inner);
    EXPECT_EQ(lock_rank::HeldCount(), 3);
    EXPECT_TRUE(lock_rank::HeldByThisThread(&outer));
    EXPECT_TRUE(lock_rank::HeldByThisThread(&mid));
    EXPECT_TRUE(lock_rank::HeldByThisThread(&inner));
  }
  EXPECT_EQ(lock_rank::HeldCount(), 0);
  EXPECT_FALSE(lock_rank::HeldByThisThread(&outer));
}

TEST(LockRankTest, ReacquireAfterReleaseIsClean) {
  SpinLock lock(LockRank::kStorage);
  for (int i = 0; i < 3; ++i) {
    SpinLockGuard g(lock);
    EXPECT_EQ(lock_rank::HeldCount(), 1);
  }
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankDeathTest, RankInversionAborts) {
  // kStorage (60) is held; acquiring kCollector (40) inverts the canonical
  // order — the mirror-image nesting elsewhere would deadlock against this.
  SpinLock storage(LockRank::kStorage);
  SpinLock collector(LockRank::kCollector);
  EXPECT_DEATH(
      {
        SpinLockGuard g1(storage);
        SpinLockGuard g2(collector);
      },
      "lock_rank.*rank inversion");
}

TEST(LockRankDeathTest, EqualRankPeersAbort) {
  // Two locks of the same rank may never be held together exclusively:
  // thread A nesting s1->s2 while thread B nests s2->s1 is an AB/BA
  // deadlock, and rank equality cannot order them.
  SpinLock s1(LockRank::kIndexShard);
  SpinLock s2(LockRank::kIndexShard);
  EXPECT_DEATH(
      {
        SpinLockGuard g1(s1);
        SpinLockGuard g2(s2);
      },
      "lock_rank.*rank inversion");
}

TEST(LockRankDeathTest, SelfReentryAborts) {
  // The PR-6 HashIndex::ForEach -> ReadKeyAt class: re-acquiring a held,
  // non-reentrant lock hangs forever; the detector turns it into an abort.
  SpinLock lock(LockRank::kIndexShard);
  EXPECT_DEATH(
      {
        lock.lock();
        lock.lock();
      },
      "lock_rank.*self-reentry");
}

TEST(LockRankDeathTest, UnlockOutOfLifoOrderAborts) {
  Mutex a(LockRank::kCollector);
  Mutex b(LockRank::kStorage);
  EXPECT_DEATH(
      {
        a.lock();
        b.lock();
        a.unlock();  // b is still held above a
      },
      "lock_rank.*LIFO");
}

TEST(LockRankDeathTest, ReleasingUnheldLockAborts) {
  Mutex m(LockRank::kLeaf);
  EXPECT_DEATH(m.unlock(), "lock_rank.*does not hold");
}

TEST(LockRankTest, SharedSameRankStackingAllowed) {
  // The scatter-gather gate pattern: all shard gates taken SHARED at one
  // rank. Readers never block readers, so stacking is deadlock-free, and
  // release order within the run is meaningless (vector destruction
  // releases in forward order).
  SharedMutex g0(LockRank::kShardGate);
  SharedMutex g1(LockRank::kShardGate);
  SharedMutex g2(LockRank::kShardGate);
  g0.lock_shared();
  g1.lock_shared();
  g2.lock_shared();
  EXPECT_EQ(lock_rank::HeldCount(), 3);
  // Out-of-LIFO release inside the equal-rank shared run is permitted.
  g0.unlock_shared();
  g1.unlock_shared();
  g2.unlock_shared();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankDeathTest, ExclusiveOnTopOfSharedPeerAborts) {
  // Only SHARED acquisitions may stack at equal rank: an exclusive acquirer
  // at the same rank can deadlock against the reader crowd.
  SharedMutex g0(LockRank::kShardGate);
  SharedMutex g1(LockRank::kShardGate);
  EXPECT_DEATH(
      {
        g0.lock_shared();
        g1.lock();
      },
      "lock_rank.*rank inversion");
}

TEST(LockRankTest, TryLockIsExemptFromOrderingRules) {
  // try_lock cannot block, so it cannot deadlock: a successful try-acquire
  // below (or at) the held rank is recorded but not flagged. QueryFresh's
  // optimistic instantiation spin relies on this.
  SpinLock high(LockRank::kStats);
  SpinLock low(LockRank::kCollector);
  high.lock();
  ASSERT_TRUE(low.try_lock());  // below the held rank: fine for try_lock
  EXPECT_EQ(lock_rank::HeldCount(), 2);
  low.unlock();  // LIFO still applies to try-acquired holds
  high.unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST(LockRankTest, TryLockOnSelfHeldLockFailsWithoutAborting) {
  // Spinning on try_lock against a self-held lock keeps failing — the
  // conflict path of QueryFreshReplica::InstantiateRow — and must not trip
  // the self-reentry rule (only a successful acquire is recorded).
  SpinLock lock(LockRank::kReplicaState);
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  EXPECT_EQ(lock_rank::HeldCount(), 1);
  lock.unlock();
}

TEST(LockRankTest, RankNamesCoverTheEnum) {
  EXPECT_STREQ(LockRankName(LockRank::kShardGate), "ShardGate");
  EXPECT_STREQ(LockRankName(LockRank::kArenaFree), "ArenaFree");
  EXPECT_STREQ(LockRankName(LockRank::kLeaf), "Leaf");
}

#else  // !C5_LOCK_RANK_ENABLED

// Release contract: the registry vanishes. No rank member (a SpinLock is
// exactly its one-byte flag again), and every hook is an empty inline.
static_assert(sizeof(SpinLock) == 1,
              "lock-rank bookkeeping must compile out in release builds");
static_assert(sizeof(TicketSpinLock) == 8,
              "lock-rank bookkeeping must compile out in release builds");

TEST(LockRankTest, DisabledHooksAreInertNoOps) {
  SpinLock lock;  // default rank; no registry behind it
  lock.lock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
  EXPECT_FALSE(lock_rank::HeldByThisThread(&lock));
  lock.unlock();
}

#endif  // C5_LOCK_RANK_ENABLED

}  // namespace
}  // namespace c5
