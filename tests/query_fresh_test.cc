// Query Fresh (§9) specific behaviour: lazy instantiation semantics, the
// ingest-keeps-up-by-construction property, deferred-execution cost charged
// to readers, and optimistic per-row serialization under reader contention.
// (Generic convergence/MPC coverage lives in replica_test.cc, where Query
// Fresh runs in the parameterized suite with every other protocol.)

#include "api/snapshot.h"
#include "replica/query_fresh_replica.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

using replica::QueryFreshReplica;

QueryFreshReplica::Options LazyOptions() {
  QueryFreshReplica::Options o;
  o.leave_lazy_after_catchup = true;
  return o;
}

// After ingest finishes, the visibility watermark covers the whole log but
// NO writes have executed: Query Fresh "keeps up" on ingest by construction
// because execution is deferred to readers. This is the paper's §9 critique
// in assertable form.
TEST(QueryFreshTest, IngestAdvancesVisibilityWithoutExecuting) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/100);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);

  QueryFreshReplica replica(&backup, LazyOptions());
  replica.Start(&source);
  replica.WaitUntilCaughtUp();

  EXPECT_EQ(replica.VisibleTimestamp(), run.log.MaxTimestamp());
  EXPECT_EQ(replica.stats().applied_writes.load(), 0u)
      << "lazy protocol executed writes during ingest";
  EXPECT_EQ(replica.PendingBacklog(), run.log.NumRecords());
  replica.Stop();
}

// A single read instantiates exactly the row it touches; the rest of the
// backlog stays deferred.
TEST(QueryFreshTest, ReadInstantiatesOnlyTheTouchedRow) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/100);
  storage::Database backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);

  QueryFreshReplica replica(&backup, LazyOptions());
  replica.Start(&source);
  replica.WaitUntilCaughtUp();

  // Count the hot row's writes in the log (the adversarial workload updates
  // key 0 once per transaction, plus the initial load).
  std::uint64_t hot_writes = 0;
  for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
    for (const auto& rec : run.log.segment(s)->records()) {
      if (rec.key == workload::SyntheticWorkload::kHotKey) ++hot_writes;
    }
  }
  ASSERT_GT(hot_writes, 0u);

  Value v;
  ASSERT_TRUE(
      replica.ReadAtVisible(table, workload::SyntheticWorkload::kHotKey, &v)
          .ok());
  EXPECT_EQ(replica.stats().applied_writes.load(), hot_writes);
  EXPECT_EQ(replica.PendingBacklog(), run.log.NumRecords() - hot_writes);
  replica.Stop();
}

// Reading every key lazily reconstructs the primary's exact state with no
// eager drain at all.
TEST(QueryFreshTest, ReadsAloneConvergeToPrimaryState) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/150);
  storage::Database backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);

  QueryFreshReplica replica(&backup, LazyOptions());
  replica.Start(&source);
  replica.WaitUntilCaughtUp();

  for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
    for (const auto& rec : run.log.segment(s)->records()) {
      Value v;
      EXPECT_TRUE(replica.ReadAtVisible(table, rec.key, &v).ok());
    }
  }
  EXPECT_EQ(replica.PendingBacklog(), 0u);
  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp));
  replica.Stop();
}

// Multi-key read-only transaction pattern: fix one snapshot timestamp,
// pre-instantiate the read set, then read both rows at that timestamp.
// Transactional atomicity must hold (both keys updated together by every
// transaction must read equal).
TEST(QueryFreshTest, FixedSnapshotReadsAreAtomic) {
  auto primary = test::Primary::Mvtso();
  const TableId table =
      workload::SyntheticWorkload::CreateTable(&primary->db);
  constexpr Key kA = 7, kB = 8;
  for (std::uint64_t n = 0; n <= 300; ++n) {
    const Status s = primary->engine->ExecuteWithRetry([&](txn::Txn& txn) {
      Status st = txn.Put(table, kA, workload::EncodeIntValue(n));
      if (!st.ok()) return st;
      return txn.Put(table, kB, workload::EncodeIntValue(n));
    });
    ASSERT_TRUE(s.ok());
  }
  log::Log log = primary->collector->Coalesce();

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log::OfflineSegmentSource source(&log);
  QueryFreshReplica replica(&backup, LazyOptions());

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread reader([&] {
    std::uint64_t last_seen = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Snapshot::Get drains each row's pending redo list through the
      // PrepareRowRead hook before reading — the multi-key lazy read path.
      replica.ReadOnlyTxn([&](const c5::Snapshot& snap) {
        if (snap.timestamp() == 0) return;
        Value va, vb;
        const std::uint64_t a =
            snap.Get(table, kA, &va).ok() ? workload::DecodeIntValue(va) : 0;
        const std::uint64_t b =
            snap.Get(table, kB, &vb).ok() ? workload::DecodeIntValue(vb) : 0;
        if (a != b) violation.store(true);
        if (a < last_seen) violation.store(true);
        last_seen = a;
      });
    }
  });

  replica.Start(&source);
  replica.WaitUntilCaughtUp();
  stop.store(true, std::memory_order_release);
  reader.join();
  replica.Stop();
  EXPECT_FALSE(violation.load());

  Value v;
  ASSERT_TRUE(replica.ReadAtVisible(table, kA, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 300u);
}

// Concurrent readers hammering one deferred hot row: per-row optimistic
// serialization must produce the correct final value; every reader sees the
// same state at the final snapshot.
TEST(QueryFreshTest, ConcurrentReadersOfOneHotRowAgree) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/4,
                                       /*txns_per_client=*/250);
  storage::Database backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);

  QueryFreshReplica replica(&backup, LazyOptions());
  replica.Start(&source);
  replica.WaitUntilCaughtUp();  // backlog fully pending

  constexpr int kReaders = 8;
  std::vector<Value> results(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      const Status s = replica.ReadAtVisible(
          table, workload::SyntheticWorkload::kHotKey, &results[i]);
      ASSERT_TRUE(s.ok());
    });
  }
  for (auto& t : readers) t.join();
  for (int i = 1; i < kReaders; ++i) EXPECT_EQ(results[i], results[0]);

  // The hot row must now reflect its LAST write in the log.
  Value expected;
  for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
    for (const auto& rec : run.log.segment(s)->records()) {
      if (rec.key == workload::SyntheticWorkload::kHotKey) {
        expected = rec.value;
      }
    }
  }
  EXPECT_EQ(results[0], expected);
  replica.Stop();
}

// Deleted keys: a read at the final snapshot returns NotFound after the
// delete is (lazily) instantiated.
TEST(QueryFreshTest, LazyInstantiationAppliesDeletes) {
  auto primary = test::Primary::Mvtso();
  const TableId table =
      workload::SyntheticWorkload::CreateTable(&primary->db);
  constexpr Key kKey = 42;
  ASSERT_TRUE(primary->engine
                  ->ExecuteWithRetry([&](txn::Txn& txn) {
                    return txn.Insert(table, kKey,
                                      workload::EncodeIntValue(1));
                  })
                  .ok());
  ASSERT_TRUE(primary->engine
                  ->ExecuteWithRetry(
                      [&](txn::Txn& txn) { return txn.Delete(table, kKey); })
                  .ok());
  log::Log log = primary->collector->Coalesce();

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log::OfflineSegmentSource source(&log);
  QueryFreshReplica replica(&backup, LazyOptions());
  replica.Start(&source);
  replica.WaitUntilCaughtUp();

  Value v;
  EXPECT_EQ(replica.ReadAtVisible(table, kKey, &v).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(replica.PendingBacklog(), 0u);
  replica.Stop();
}

}  // namespace
}  // namespace c5
