// SlabArena / VersionArena coverage: slab recycling, reuse-after-retire
// through the epoch manager, cross-epoch safety under concurrent readers,
// and the heap-fallback path. Run under -DC5_SANITIZE=address these tests
// also exercise the arena's poisoning (a use-after-retire inside a slab
// faults like a heap use-after-free).

#include "common/arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storage/epoch.h"
#include "storage/table.h"
#include "storage/version.h"
#include "storage/version_arena.h"

namespace c5 {
namespace {

TEST(SlabArenaTest, AllocationsAreDistinctAndWritable) {
  SlabArena arena;
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(64);
    ASSERT_NE(p, nullptr);
    std::memset(p, i, 64);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    for (int b = 0; b < 64; ++b) {
      ASSERT_EQ(static_cast<unsigned char*>(ptrs[i])[b], i);
    }
  }
  for (void* p : ptrs) SlabArena::Release(p, 64);
}

TEST(SlabArenaTest, OversizedAllocationReturnsNull) {
  SlabArena arena;
  EXPECT_EQ(arena.Allocate(SlabArena::kMaxAlloc + 1), nullptr);
  EXPECT_EQ(arena.Allocate(0), nullptr);
  void* p = arena.Allocate(SlabArena::kMaxAlloc);
  ASSERT_NE(p, nullptr);
  SlabArena::Release(p, SlabArena::kMaxAlloc);
}

TEST(SlabArenaTest, FullyReleasedSealedSlabIsRecycled) {
  SlabArena arena(/*shards=*/1);
  constexpr std::size_t kObj = 1024;
  const std::size_t per_slab =
      (SlabArena::kSlabBytes - SlabArena::kHeaderBytes) / kObj;

  // Fill and seal several slabs, releasing everything as we go.
  std::vector<void*> live;
  for (std::size_t i = 0; i < per_slab * 4; ++i) {
    void* p = arena.Allocate(kObj);
    ASSERT_NE(p, nullptr);
    live.push_back(p);
  }
  for (void* p : live) SlabArena::Release(p, kObj);
  live.clear();

  // Sealed slabs (all but the current one) are fully released -> recyclable.
  const std::uint64_t allocated_before = arena.SlabsAllocated();
  EXPECT_GE(allocated_before, 4u);
  for (std::size_t i = 0; i < per_slab * 4; ++i) {
    void* p = arena.Allocate(kObj);
    ASSERT_NE(p, nullptr);
    live.push_back(p);
  }
  // Steady state: the second wave reuses the first wave's slabs instead of
  // growing the footprint linearly.
  EXPECT_GE(arena.SlabsRecycled(), 3u);
  EXPECT_LE(arena.SlabsAllocated(), allocated_before + 1);
  for (void* p : live) SlabArena::Release(p, kObj);
}

TEST(SlabArenaTest, ConcurrentAllocateReleaseKeepsPayloadsIntact) {
  SlabArena arena;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters && !failed.load(); ++i) {
        const std::size_t n = 16 + (i % 7) * 24;
        auto* p = static_cast<unsigned char*>(arena.Allocate(n));
        if (p == nullptr) {
          failed.store(true);
          return;
        }
        std::memset(p, t * 16 + 1, n);
        for (std::size_t b = 0; b < n; ++b) {
          if (p[b] != t * 16 + 1) {
            failed.store(true);
            return;
          }
        }
        SlabArena::Release(p, n);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

TEST(VersionArenaTest, CreateInlinesPayloadAndStatus) {
  storage::VersionArena arena;
  const std::string payload(64, 'p');
  storage::Version* v = arena.Create(42, payload, /*is_delete=*/false,
                                     storage::VersionStatus::kCommitted);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->write_ts, 42u);
  EXPECT_EQ(v->value(), payload);
  EXPECT_FALSE(v->heap);
  EXPECT_EQ(v->Status(), storage::VersionStatus::kCommitted);
  EXPECT_EQ(arena.HeapFallbacks(), 0u);
  storage::FreeVersion(v);
}

TEST(VersionArenaTest, OversizedPayloadFallsBackToHeap) {
  storage::VersionArena arena;
  const std::string huge(SlabArena::kMaxAlloc + 1, 'h');
  storage::Version* v = arena.Create(7, huge, /*is_delete=*/false,
                                     storage::VersionStatus::kPending);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->heap);
  EXPECT_EQ(v->value(), huge);
  EXPECT_EQ(arena.HeapFallbacks(), 1u);
  storage::FreeVersion(v);
}

TEST(VersionArenaTest, ReuseAfterRetireThroughEpochManager) {
  // The steady-state loop the replay path runs: install, truncate via GC,
  // reclaim past the grace period, repeat. The arena footprint must stay
  // bounded by the live set, proving retired slabs really are reused.
  storage::Table table("t");
  storage::EpochManager epochs;
  const RowId row = table.AllocateRow();
  const std::string payload(64, 'x');
  Timestamp ts = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 2000; ++i) {
      table.InstallCommitted(row, ++ts, payload);
    }
    table.CollectRowGarbage(row, ts - 1, epochs);
    epochs.ReclaimSome();
    epochs.ReclaimSome();
  }
  // 100k versions of ~96 bytes passed through; live set is ~2k versions
  // (~4 slabs). Without slab reuse this would be ~150 slabs.
  EXPECT_LT(table.arena().slabs().SlabsAllocated(), 24u);
  EXPECT_GT(table.arena().slabs().SlabsRecycled(), 0u);
}

TEST(VersionArenaTest, CrossEpochSafetyUnderConcurrentReaders) {
  // Readers traverse chains while GC retires tails; epoch reclamation delays
  // slab release until readers exit. Under ASan, premature reuse of slab
  // memory trips the arena poisoning.
  storage::Table table("t");
  storage::EpochManager epochs;
  const RowId row = table.AllocateRow();
  const std::string payload(48, 'r');
  table.InstallCommitted(row, 1, payload);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto guard = epochs.Enter();
        const storage::Version* v = table.ReadAt(row, kMaxTimestamp);
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(v->value().size(), payload.size());
        ASSERT_EQ(v->value()[0], 'r');
      }
    });
  }
  Timestamp ts = 1;
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 50; ++i) table.InstallCommitted(row, ++ts, payload);
    table.CollectRowGarbage(row, ts - 1, epochs);
    epochs.ReclaimSome();
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  // Final trim at the full horizon (ts-1 above kept the horizon version AND
  // the head), then drain the retirement queue.
  table.CollectRowGarbage(row, ts, epochs);
  epochs.ReclaimSome();
  epochs.ReclaimSome();
  EXPECT_EQ(table.CountVersionsApprox(), 1u);
}

TEST(EpochBatchTest, ReclaimReportsExactBatchCounts) {
  // RetireBatch counts every object its deleter frees; Retire counts one.
  storage::Table table("t");
  storage::EpochManager epochs;
  const RowId row = table.AllocateRow();
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    table.InstallCommitted(row, ts, "v");
  }
  ASSERT_EQ(table.CollectRowGarbage(row, 10, epochs), 1u);  // one chain
  // 9 versions below the newest committed at horizon 10 are in the batch.
  EXPECT_EQ(epochs.ReclaimSome() + epochs.ReclaimSome(), 9u);
  EXPECT_EQ(table.CountVersionsApprox(), 1u);
}

}  // namespace
}  // namespace c5
