#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/spsc_queue.h"

namespace c5 {
namespace {

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_EQ(q.TryPop().value(), 1);
  EXPECT_EQ(q.TryPop().value(), 2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SpscQueueTest, FullQueueRejectsTryPush) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
  EXPECT_EQ(q.SizeApprox(), 4u);
}

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(5);  // becomes 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(SpscQueueTest, PopDrainsAfterClose) {
  SpscQueue<int> q(8);
  q.TryPush(1);
  q.TryPush(2);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(SpscQueueTest, PushFailsAfterCloseWhenFull) {
  SpscQueue<int> q(2);
  q.TryPush(1);
  q.TryPush(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // full + closed: must not block forever
}

TEST(SpscQueueTest, ConcurrentTransferPreservesOrderAndContent) {
  SpscQueue<int> q(64);
  constexpr int kItems = 200000;
  std::vector<int> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    while (auto v = q.Pop()) received.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
  q.Close();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
}

TEST(MpmcQueueTest, PushPopBasic) {
  MpmcQueue<int> q;
  q.Push(7);
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpmcQueueTest, FifoOrderSingleThread) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.Pop().value(), i);
}

TEST(MpmcQueueTest, CloseUnblocksPoppers) {
  MpmcQueue<int> q;
  std::thread t([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  t.join();
}

TEST(MpmcQueueTest, DrainsAfterClose) {
  MpmcQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, ManyProducersManyConsumers) {
  MpmcQueue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 50000;
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = kProducers; c < kProducers + kConsumers; ++c) {
    threads[c].join();
  }

  const std::int64_t n = static_cast<std::int64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueueTest, SizeReflectsContents) {
  MpmcQueue<int> q;
  EXPECT_EQ(q.Size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Size(), 2u);
  q.TryPop();
  EXPECT_EQ(q.Size(), 1u);
}

}  // namespace
}  // namespace c5
