// High-availability paths: backup promotion (ha::PromoteToPrimary), replica
// restart from a checkpoint (ha::ResumeSegmentSource + idempotent apply),
// chained log shipping to surviving backups after failover, and
// at-least-once log delivery.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/snapshot.h"
#include "core/protocol_factory.h"
#include "ha/promotion.h"
#include "ha/recovery.h"
#include "log/segment_source.h"
#include "sim/dst_channel.h"
#include "sim/dst_plan.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"
#include "workload/tpcc.h"

namespace c5 {
namespace {

using core::MakeReplica;
using core::ProtocolKind;
using core::ProtocolOptions;

// Builds a copy of `log` delivered `times` times in sequence, with fresh
// segments and contiguous base_seq (models duplicate shipping after a
// network retry: same records, same timestamps, delivered again).
log::Log RepeatLog(const log::Log& log, int times) {
  log::Log out;
  std::uint64_t seq = 0;
  for (int n = 0; n < times; ++n) {
    for (std::size_t s = 0; s < log.NumSegments(); ++s) {
      const log::LogSegment* src = log.segment(s);
      auto seg = std::make_unique<log::LogSegment>(seq);
      for (const log::LogRecord& rec : src->records()) {
        log::LogRecord copy = rec;
        copy.prev_ts = kInvalidTimestamp;
        seg->Append(copy);
      }
      seq += seg->size();
      out.AppendSegment(std::move(seg));
    }
  }
  return out;
}

class FailoverParamTest : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ProtocolKind kind() const { return GetParam(); }
  ProtocolOptions Options() const {
    ProtocolOptions o;
    o.num_workers = 4;
    o.snapshot_interval = std::chrono::microseconds(100);
    return o;
  }
};

const ProtocolKind kAllCorrectProtocols[] = {
    ProtocolKind::kC5,           ProtocolKind::kC5MyRocks,
    ProtocolKind::kC5Queue,      ProtocolKind::kPageGranularity,
    ProtocolKind::kTableGranularity, ProtocolKind::kKuaFu,
    ProtocolKind::kSingleThread, ProtocolKind::kQueryFresh,
};

// Crash-restart: replay a prefix, "crash" (destroy the replica object,
// keeping the database), then restart a fresh replica instance on the same
// database from the dead one's visibility checkpoint. The boundary segment
// is redelivered; idempotent apply must discard the overlap and the final
// state must equal the primary's.
TEST_P(FailoverParamTest, RestartFromCheckpointConverges) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/4,
                                       /*txns_per_client=*/150);
  ASSERT_GT(run.log.NumSegments(), 2u);

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();

  // First incarnation: applies roughly half the log, then dies.
  Timestamp checkpoint = 0;
  {
    log::PrefixSegmentSource half(&run.log, run.log.NumSegments() / 2);
    auto replica = MakeReplica(kind(), &backup, Options());
    replica->Start(&half);
    replica->WaitUntilCaughtUp();
    checkpoint = replica->VisibleTimestamp();
    replica->Stop();
  }
  ASSERT_GT(checkpoint, 0u);
  ASSERT_LT(checkpoint, run.log.MaxTimestamp());

  // Second incarnation: resume from the checkpoint on the SAME database.
  run.log.ResetReplayState();
  ha::ResumeSegmentSource resume(&run.log, checkpoint);
  auto replica = MakeReplica(kind(), &backup, Options());
  replica->Start(&resume);
  replica->WaitUntilCaughtUp();
  EXPECT_EQ(replica->VisibleTimestamp(), run.log.MaxTimestamp());
  replica->Stop();

  EXPECT_GT(resume.skipped(), 0u) << "resume should skip covered segments";
  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp));
}

// At-least-once delivery: the entire log arrives twice (e.g., an aggressive
// shipping retry). Idempotent apply must converge to the same state as a
// single delivery, with no duplicate versions.
TEST_P(FailoverParamTest, DoubleDeliveryConverges) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/100);
  log::Log doubled = RepeatLog(run.log, 2);

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log::OfflineSegmentSource source(&doubled);
  auto replica = MakeReplica(kind(), &backup, Options());
  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  replica->Stop();

  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp));

  // No duplicate versions: per-row chains strictly decreasing.
  const auto guard = backup.epochs().Enter();
  for (TableId t = 0; t < backup.NumTables(); ++t) {
    const storage::Table& table = backup.table(t);
    for (RowId r = 0; r < table.NumRows(); ++r) {
      Timestamp prev = kMaxTimestamp;
      for (const storage::Version* v = table.ReadLatestCommitted(r);
           v != nullptr; v = v->Next()) {
        ASSERT_LT(v->write_ts, prev) << "duplicate or out-of-order version";
        prev = v->write_ts;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, FailoverParamTest,
    ::testing::ValuesIn(kAllCorrectProtocols),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = core::ToString(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class PromotionTest : public ::testing::TestWithParam<ha::EngineKind> {};

// Full failover: primary dies after the backup received a prefix; the
// backup drains, is promoted, and serves read-write transactions whose
// commits extend the replicated history.
TEST_P(PromotionTest, PromotedBackupContinuesHistory) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/false, /*clients=*/2,
                                       /*txns_per_client=*/200);
  const Timestamp old_max = run.log.MaxTimestamp();

  storage::Database backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  Timestamp applied_upto = 0;
  {
    auto replica =
        MakeReplica(ProtocolKind::kC5, &backup, {.num_workers = 4});
    replica->Start(&source);
    replica->WaitUntilCaughtUp();
    applied_upto = replica->VisibleTimestamp();
    replica->Stop();
  }
  ASSERT_EQ(applied_upto, old_max);

  auto promoted = ha::PromoteToPrimary(&backup, applied_upto, GetParam());
  ASSERT_NE(promoted->engine, nullptr);

  // Old data is readable through the new engine; new transactions commit
  // with strictly larger timestamps.
  constexpr Key kNewKey = 555;
  Timestamp new_commit_ts = 0;
  const Status s = promoted->engine->ExecuteWithRetry([&](txn::Txn& txn) {
    Value v;
    // Read-modify-write over replicated state: the first insert key of
    // client 0 exists (bit-63 pattern of SyntheticWorkload).
    const Key replicated = (std::uint64_t{1} << 63);
    Status st = txn.Read(table, replicated, &v);
    if (!st.ok()) return st;
    st = txn.Insert(table, kNewKey, v);
    if (!st.ok()) return st;
    new_commit_ts = txn.timestamp();
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok()) << s.message();
  if (GetParam() == ha::EngineKind::kMvtso) {
    EXPECT_GT(new_commit_ts, old_max);
  }
  EXPECT_EQ(promoted->engine->stats().commits.load(), 1u);

  // The promoted node's log extends the old history: all records above
  // old_max, well-formed.
  log::Log new_log = promoted->collector.Coalesce();
  ASSERT_GT(new_log.NumRecords(), 0u);
  EXPECT_GT(new_log.segment(0)->MinTimestamp(), old_max);
  EXPECT_TRUE(test::LogIsWellFormed(new_log));
}

INSTANTIATE_TEST_SUITE_P(BothEngines, PromotionTest,
                         ::testing::Values(ha::EngineKind::kMvtso,
                                           ha::EngineKind::kTwoPhaseLocking),
                         [](const ::testing::TestParamInfo<ha::EngineKind>&
                                info) {
                           return info.param == ha::EngineKind::kMvtso
                                      ? "mvtso"
                                      : "two_phase_locking";
                         });

// A surviving backup re-points at the promoted primary: old log followed by
// the promoted node's log is one consistent history (ChainedSegmentSource),
// and the surviving backup converges to the promoted node's state.
TEST(FailoverTest, SurvivingBackupFollowsPromotedPrimary) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/150);

  // Backup A: catches up, gets promoted, executes new transactions.
  storage::Database backup_a;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup_a);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source_a(&run.log);
  Timestamp applied_upto = 0;
  {
    auto replica =
        MakeReplica(ProtocolKind::kC5, &backup_a, {.num_workers = 4});
    replica->Start(&source_a);
    replica->WaitUntilCaughtUp();
    applied_upto = replica->VisibleTimestamp();
    replica->Stop();
  }
  auto promoted =
      ha::PromoteToPrimary(&backup_a, applied_upto, ha::EngineKind::kMvtso);
  for (std::uint64_t n = 0; n < 100; ++n) {
    const Status s = promoted->engine->ExecuteWithRetry([&](txn::Txn& txn) {
      return txn.Put(table, 10000 + n, workload::EncodeIntValue(n));
    });
    ASSERT_TRUE(s.ok());
  }
  log::Log new_log = promoted->collector.Coalesce();

  // Backup B (fresh stand-in for a surviving backup that was at zero):
  // consumes old log then new log through one chained source.
  storage::Database backup_b;
  workload::SyntheticWorkload::CreateTable(&backup_b);
  run.log.ResetReplayState();
  log::OfflineSegmentSource old_source(&run.log);
  log::OfflineSegmentSource new_source(&new_log);
  ha::ChainedSegmentSource chained({&old_source, &new_source});
  auto replica =
      MakeReplica(ProtocolKind::kC5, &backup_b, {.num_workers = 4});
  replica->Start(&chained);
  replica->WaitUntilCaughtUp();
  EXPECT_EQ(replica->VisibleTimestamp(), new_log.MaxTimestamp());
  replica->Stop();

  EXPECT_EQ(test::StateDigest(backup_b, kMaxTimestamp),
            test::StateDigest(backup_a, kMaxTimestamp))
      << "surviving backup diverged from promoted primary";
}

// A surviving backup that already applied a prefix re-points with a
// ResumeSegmentSource for the old log plus the promoted log: no rewind
// needed, overlap discarded.
TEST(FailoverTest, LaggingSurvivorResumesIntoNewHistory) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/150);

  // Promote a fully-caught-up backup A.
  storage::Database backup_a;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup_a);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source_a(&run.log);
  Timestamp applied_upto = 0;
  {
    auto replica =
        MakeReplica(ProtocolKind::kC5, &backup_a, {.num_workers = 4});
    replica->Start(&source_a);
    replica->WaitUntilCaughtUp();
    applied_upto = replica->VisibleTimestamp();
    replica->Stop();
  }
  auto promoted =
      ha::PromoteToPrimary(&backup_a, applied_upto, ha::EngineKind::kMvtso);
  for (std::uint64_t n = 0; n < 50; ++n) {
    ASSERT_TRUE(promoted->engine
                    ->ExecuteWithRetry([&](txn::Txn& txn) {
                      return txn.Put(table, 20000 + n,
                                     workload::EncodeIntValue(n));
                    })
                    .ok());
  }
  log::Log new_log = promoted->collector.Coalesce();

  // Backup B applied only half the old log before the failover.
  storage::Database backup_b;
  workload::SyntheticWorkload::CreateTable(&backup_b);
  run.log.ResetReplayState();
  Timestamp b_checkpoint = 0;
  {
    log::PrefixSegmentSource half(&run.log, run.log.NumSegments() / 2);
    auto replica =
        MakeReplica(ProtocolKind::kKuaFu, &backup_b, {.num_workers = 4});
    replica->Start(&half);
    replica->WaitUntilCaughtUp();
    b_checkpoint = replica->VisibleTimestamp();
    replica->Stop();
  }

  // Re-point B: resume the old log from B's checkpoint, then the new log.
  run.log.ResetReplayState();
  ha::ResumeSegmentSource resume_old(&run.log, b_checkpoint);
  log::OfflineSegmentSource new_source(&new_log);
  ha::ChainedSegmentSource chained({&resume_old, &new_source});
  auto replica =
      MakeReplica(ProtocolKind::kKuaFu, &backup_b, {.num_workers = 4});
  replica->Start(&chained);
  replica->WaitUntilCaughtUp();
  replica->Stop();

  EXPECT_EQ(test::StateDigest(backup_b, kMaxTimestamp),
            test::StateDigest(backup_a, kMaxTimestamp));
}


// Promotion during ACTIVE replay with in-flight transactions, driven by the
// DST harness's crash injector: the backup's feed dies mid-log (only a
// prefix of segments is delivered, with wire faults — corruption, torn
// tails, duplicates — in transit) while read-only clients hammer it. The
// survivor drains what it received, is promoted, and runs new transactions;
// its state must equal the single-thread oracle's replay of the same prefix
// plus the promoted node's own log, and reader snapshots must never regress
// across the whole episode.
TEST(FailoverTest, PromotionDuringActiveReplayMatchesOracle) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/200);
  const std::size_t num_segs = run.log.NumSegments();
  ASSERT_GT(num_segs, 4u);

  sim::DstPlan plan = sim::DstPlan::FromSeed(test::TestSeed(31337));
  const std::size_t cut = num_segs / 2;  // the feed dies here
  sim::DstChannel channel(&run.log, 0, cut, plan, /*salt=*/1);
  ASSERT_TRUE(channel.error().empty()) << channel.error();
  ASSERT_GE(channel.stats().frames_shipped, cut);

  storage::Database backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup);
  sim::DstChannel::Source source = channel.MakeSource();
  auto replica = MakeReplica(ProtocolKind::kC5, &backup, {.num_workers = 4});
  auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get());
  ASSERT_NE(base, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<bool> monotonic{true};
  std::thread readers([&] {
    Timestamp last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      base->ReadOnlyTxn([&](const c5::Snapshot& snap) {
        if (snap.timestamp() < last) {
          monotonic.store(false, std::memory_order_relaxed);
        }
        last = snap.timestamp();
      });
      Value v;
      (void)base->ReadAtVisible(table, workload::SyntheticWorkload::kHotKey,
                                &v);
    }
  });

  replica->Start(&source);
  // Drains the received prefix; transactions above the cut are in flight on
  // the dead primary and lost — exactly the state a promotion inherits.
  replica->WaitUntilCaughtUp();
  const Timestamp applied = replica->VisibleTimestamp();
  stop.store(true, std::memory_order_release);
  readers.join();
  replica->Stop();
  ASSERT_EQ(applied, run.log.segment(cut - 1)->MaxTimestamp());
  ASSERT_LT(applied, run.log.MaxTimestamp());
  EXPECT_TRUE(monotonic.load()) << "reader snapshot regressed";

  auto promoted =
      ha::PromoteToPrimary(&backup, applied, ha::EngineKind::kMvtso);
  for (std::uint64_t n = 0; n < 60; ++n) {
    ASSERT_TRUE(promoted->engine
                    ->ExecuteWithRetry([&](txn::Txn& txn) {
                      return txn.Put(table, 40000 + n,
                                     workload::EncodeIntValue(n));
                    })
                    .ok());
  }
  log::Log new_log = promoted->collector.Coalesce();
  ASSERT_GT(new_log.NumRecords(), 0u);
  EXPECT_GT(new_log.segment(0)->MinTimestamp(), applied);

  storage::Database oracle;
  workload::SyntheticWorkload::CreateTable(&oracle);
  log::PrefixSegmentSource prefix(&run.log, cut);
  log::OfflineSegmentSource new_source(&new_log);
  ha::ChainedSegmentSource chained({&prefix, &new_source});
  auto single = MakeReplica(ProtocolKind::kSingleThread, &oracle, {});
  single->Start(&chained);
  single->WaitUntilCaughtUp();
  single->Stop();

  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(oracle, kMaxTimestamp))
      << "post-promotion state diverges from the single-thread oracle";
}

// Realistic-schema failover: TPC-C state replicated to a C5 backup, the
// backup promoted, and real NewOrder/Payment transactions executed on the
// promoted engine. The district order-count invariant must span both
// incarnations: sum over districts of (d_next_o_id - 1) == NewOrders
// committed before the failure + after the promotion.
TEST(FailoverTest, PromotedBackupRunsTpcc) {
  using namespace workload::tpcc;
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 50;
  cfg.items = 200;

  storage::Database primary_db;
  TxnClock clock;
  log::PerThreadLogCollector collector(256);
  txn::MvtsoEngine engine(&primary_db, &collector, &clock);
  CreateTables(&primary_db);
  ASSERT_GT(Load(engine, cfg), 0u);

  Rng rng(test::TestSeed(42));
  std::uint64_t committed_before = 0;
  for (int i = 0; i < 200; ++i) {
    const Status s = RunNewOrder(engine, rng, cfg, 1);
    if (s.ok()) ++committed_before;
  }
  log::Log log = collector.Coalesce();

  // Replicate to a backup and promote it.
  storage::Database backup;
  CreateTables(&backup);
  log::OfflineSegmentSource source(&log);
  Timestamp applied = 0;
  {
    auto replica =
        MakeReplica(ProtocolKind::kC5, &backup, {.num_workers = 4});
    replica->Start(&source);
    replica->WaitUntilCaughtUp();
    applied = replica->VisibleTimestamp();
    replica->Stop();
  }
  auto promoted =
      ha::PromoteToPrimary(&backup, applied, ha::EngineKind::kMvtso);

  std::uint64_t committed_after = 0;
  for (int i = 0; i < 200; ++i) {
    const Status s = RunNewOrder(*promoted->engine, rng, cfg, 1);
    if (s.ok()) ++committed_after;
  }
  for (int i = 0; i < 50; ++i) {
    (void)RunPayment(*promoted->engine, rng, cfg, 1);
  }
  ASSERT_GT(committed_after, 0u);

  // District invariant across the failover boundary.
  const auto guard = backup.epochs().Enter();
  std::uint64_t total_orders = 0;
  for (std::uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
    const auto* v =
        backup.ReadKeyAt(kDistrict, DistrictKey(1, d), kMaxTimestamp);
    ASSERT_NE(v, nullptr);
    total_orders += FromValue<DistrictRow>(v->value()).d_next_o_id - 1;
  }
  EXPECT_EQ(total_orders, committed_before + committed_after);
  EXPECT_EQ(backup.index(kOrder).Size(),
            committed_before + committed_after);
}

}  // namespace
}  // namespace c5

