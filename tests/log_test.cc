#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "log/log_collector.h"
#include "log/log_segment.h"
#include "log/segment_source.h"
#include "tests/test_util.h"

namespace c5::log {
namespace {

std::vector<LogRecord> MakeTxn(Timestamp ts, std::initializer_list<RowId> rows) {
  std::vector<LogRecord> records;
  for (const RowId r : rows) {
    LogRecord rec;
    rec.table = 0;
    rec.row = r;
    rec.key = r;
    rec.commit_ts = ts;
    rec.value = test::InternValue("v" + std::to_string(ts));
    records.push_back(std::move(rec));
  }
  records.back().last_in_txn = true;
  return records;
}

TEST(LogSegmentTest, AppendAndTimestamps) {
  LogSegment seg(0);
  EXPECT_TRUE(seg.empty());
  for (auto& r : MakeTxn(5, {1, 2})) seg.Append(std::move(r));
  EXPECT_EQ(seg.size(), 2u);
  EXPECT_EQ(seg.MinTimestamp(), 5u);
  EXPECT_EQ(seg.MaxTimestamp(), 5u);
}

TEST(LogSegmentTest, PreprocessedFlagAndReset) {
  LogSegment seg(0);
  for (auto& r : MakeTxn(5, {1})) seg.Append(std::move(r));
  EXPECT_FALSE(seg.preprocessed());
  seg.record(0).prev_ts = 3;
  seg.MarkPreprocessed();
  EXPECT_TRUE(seg.preprocessed());
  seg.ResetReplayState();
  EXPECT_FALSE(seg.preprocessed());
  EXPECT_EQ(seg.record(0).prev_ts, kInvalidTimestamp);
}

TEST(LogTest, CountsRecordsAndTransactions) {
  Log log;
  auto seg = std::make_unique<LogSegment>(0);
  for (auto& r : MakeTxn(1, {1, 2})) seg->Append(std::move(r));
  for (auto& r : MakeTxn(2, {3})) seg->Append(std::move(r));
  log.AppendSegment(std::move(seg));
  EXPECT_EQ(log.NumRecords(), 3u);
  EXPECT_EQ(log.CountTransactions(), 2u);
  EXPECT_EQ(log.MaxTimestamp(), 2u);
}

TEST(PerThreadCollectorTest, CoalesceSortsByCommitTimestamp) {
  PerThreadLogCollector collector(1024);
  // Log out of order from several threads.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&collector, t] {
      for (int i = 0; i < 100; ++i) {
        collector.LogCommit(MakeTxn(static_cast<Timestamp>(t + 4 * i + 1),
                                    {static_cast<RowId>(t)}));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(collector.BufferedTxns(), 400u);

  Log log = collector.Coalesce();
  EXPECT_EQ(log.CountTransactions(), 400u);
  EXPECT_TRUE(test::LogIsWellFormed(log));
  EXPECT_EQ(collector.BufferedTxns(), 0u);
}

TEST(PerThreadCollectorTest, TransactionsNeverSpanSegments) {
  PerThreadLogCollector collector(/*segment_records=*/10);
  for (Timestamp ts = 1; ts <= 30; ++ts) {
    collector.LogCommit(MakeTxn(ts, {1, 2, 3, 4, 5, 6, 7}));
  }
  Log log = collector.Coalesce();
  EXPECT_GT(log.NumSegments(), 1u);
  EXPECT_TRUE(test::LogIsWellFormed(log));
}

TEST(PerThreadCollectorTest, OversizedTransactionGetsOwnSegment) {
  PerThreadLogCollector collector(/*segment_records=*/4);
  collector.LogCommit(
      MakeTxn(1, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));  // bigger than a segment
  collector.LogCommit(MakeTxn(2, {11}));
  Log log = collector.Coalesce();
  EXPECT_TRUE(test::LogIsWellFormed(log));
  EXPECT_EQ(log.NumRecords(), 11u);
}

TEST(OfflineSourceTest, IteratesSegmentsInOrder) {
  PerThreadLogCollector collector(2);
  for (Timestamp ts = 1; ts <= 10; ++ts) collector.LogCommit(MakeTxn(ts, {ts}));
  Log log = collector.Coalesce();

  OfflineSegmentSource source(&log);
  Timestamp prev = 0;
  std::size_t segments = 0;
  while (LogSegment* seg = source.Next()) {
    EXPECT_GE(seg->MinTimestamp(), prev);
    prev = seg->MaxTimestamp();
    ++segments;
  }
  EXPECT_EQ(segments, log.NumSegments());
  EXPECT_EQ(source.Next(), nullptr);  // stays exhausted
}

TEST(OnlineCollectorTest, ShipsFullSegmentsInOrder) {
  OnlineLogCollector collector(/*segment_records=*/4, /*channel_capacity=*/64);
  for (Timestamp ts = 1; ts <= 10; ++ts) collector.LogCommit(MakeTxn(ts, {ts}));
  collector.Finish();

  ChannelSegmentSource source(&collector.channel());
  std::uint64_t seen = 0;
  Timestamp prev = 0;
  std::uint64_t expected_base = 0;
  while (LogSegment* seg = source.Next()) {
    EXPECT_EQ(seg->base_seq(), expected_base);
    expected_base += seg->size();
    EXPECT_GE(seg->MinTimestamp(), prev);
    prev = seg->MaxTimestamp();
    seen += seg->size();
  }
  EXPECT_EQ(seen, 10u);
}

TEST(OnlineCollectorTest, FlushShipsPartialSegment) {
  OnlineLogCollector collector(/*segment_records=*/1000);
  collector.LogCommit(MakeTxn(1, {1}));
  EXPECT_EQ(collector.ShippedSegments(), 0u);
  collector.Flush();
  EXPECT_EQ(collector.ShippedSegments(), 1u);
  collector.Finish();
  ChannelSegmentSource source(&collector.channel());
  LogSegment* seg = source.Next();
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size(), 1u);
  EXPECT_EQ(source.Next(), nullptr);
}

TEST(OnlineCollectorTest, ConcurrentProducersSerializeCleanly) {
  OnlineLogCollector collector(/*segment_records=*/16);
  std::vector<std::thread> producers;
  std::atomic<Timestamp> clock{1};
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const Timestamp ts = clock.fetch_add(1);
        collector.LogCommit(MakeTxn(ts, {ts, ts + 100000}));
      }
    });
  }
  std::uint64_t records = 0;
  std::thread consumer([&] {
    ChannelSegmentSource source(&collector.channel());
    while (LogSegment* seg = source.Next()) records += seg->size();
  });
  for (auto& p : producers) p.join();
  collector.Finish();
  consumer.join();
  EXPECT_EQ(records, 4u * 500u * 2u);
}

TEST(LogTest, ResetReplayStateClearsAllSegments) {
  PerThreadLogCollector collector(4);
  for (Timestamp ts = 1; ts <= 10; ++ts) collector.LogCommit(MakeTxn(ts, {1}));
  Log log = collector.Coalesce();
  for (std::size_t i = 0; i < log.NumSegments(); ++i) {
    log.segment(i)->MarkPreprocessed();
    for (auto& rec : log.segment(i)->records()) rec.prev_ts = 99;
  }
  log.ResetReplayState();
  for (std::size_t i = 0; i < log.NumSegments(); ++i) {
    EXPECT_FALSE(log.segment(i)->preprocessed());
    for (auto& rec : log.segment(i)->records()) {
      EXPECT_EQ(rec.prev_ts, kInvalidTimestamp);
    }
  }
}

}  // namespace
}  // namespace c5::log
