// Allocation-budget regression test for the shipping pipeline.
//
// Guards the headline perf property of the allocation-free shipping work
// (see docs/PERFORMANCE.md): once the arenas, segment pools, and replica
// staging buffers are warm, a write transaction flows primary-commit ->
// segment build -> encode -> ship -> decode -> apply without allocating.
// The bench trajectory tracks the same number as fig9's
// pipeline_allocs_per_write_txn; this test makes the budget a ctest
// invariant so a regression fails fast instead of drifting in a bench JSON.
//
// bench/alloc_hook.h defines NON-inline replacement operators, so it must be
// included by exactly one translation unit per binary — each tests/*.cc is
// its own binary (CMake globs one executable per file), so including it here
// is safe. The hook is malloc-backed and sanitizer-compatible (ASan/TSan
// intercept the underlying malloc/free).

#include "bench/alloc_hook.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/protocol_factory.h"
#include "log/log_collector.h"
#include "replica/replica.h"
#include "storage/database.h"
#include "txn/two_phase_locking_engine.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

// Steady-state budget: allocations per write transaction across the WHOLE
// in-process pipeline. The ISSUE-level target for the cold fig9 pipeline
// (startup included) is < 0.5; warm steady state must meet the same bar.
constexpr double kAllocsPerTxnBudget = 0.5;

constexpr std::uint32_t kWritesPerTxn = 4;
constexpr std::uint64_t kWarmupTxns = 4096;
constexpr std::uint64_t kMeasuredTxns = 4096;

TEST(AllocBudgetTest, WarmPipelineStaysUnderBudget) {
  storage::Database primary_db, backup_db;
  const TableId table = workload::SyntheticWorkload::CreateTable(&primary_db);
  workload::SyntheticWorkload::CreateTable(&backup_db);

  TxnClock clock;
  log::OnlineLogCollector collector(/*segment_records=*/256);
  txn::TwoPhaseLockingEngine engine(&primary_db, &collector, &clock);
  collector.SetReleaseHorizon([&engine] { return engine.LogHorizon(); });

  log::ChannelSegmentSource source(&collector.channel());
  core::ProtocolOptions options;
  options.num_workers = 2;
  options.snapshot_interval = std::chrono::microseconds(100);
  options.gc_every = 16;  // recycle version slabs like a long-running backup
  auto rep = core::MakeReplica(core::ProtocolKind::kC5MyRocks, &backup_db,
                               options);
  rep->Start(&source);

  // One committed transaction of kWritesPerTxn fresh-key inserts — the same
  // shape fig9 measures. Fresh rows never touch the lock manager, so the
  // count isolates the shipping pipeline itself; updates would add the lock
  // table's per-acquire node churn, which is 2PL cost, not pipeline cost.
  std::uint64_t cursor = 0;
  const auto run_txn = [&]() {
    const std::uint64_t base = cursor;
    const Status s = engine.ExecuteWithRetry([&](txn::Txn& txn) {
      for (std::uint32_t i = 0; i < kWritesPerTxn; ++i) {
        const Status st = txn.Insert(table, base + i,
                                     workload::EncodeIntValue(base + i));
        if (!st.ok()) return st;
      }
      return Status::Ok();
    });
    ASSERT_TRUE(s.ok()) << s.message();
    cursor = base + kWritesPerTxn;
  };

  // Blocks until the backup's published snapshot covers everything committed
  // so far, so a phase's apply work is counted inside that phase's scope.
  const auto drain = [&]() {
    collector.Flush();
    const Timestamp target = clock.Latest();
    while (rep->VisibleTimestamp() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  // Warmup: enough transactions that every pipeline pool (log arena,
  // segment pool, decode staging, version slabs, worker-local state)
  // reaches steady-state capacity.
  for (std::uint64_t t = 0; t < kWarmupTxns; ++t) run_txn();
  drain();

  // Steady state: every allocation between here and the post-drain snapshot
  // is pipeline cost attributable to these transactions.
  bench::AllocScope scope;
  for (std::uint64_t t = 0; t < kMeasuredTxns; ++t) run_txn();
  drain();
  const double allocs_per_txn =
      static_cast<double>(scope.Count()) / kMeasuredTxns;

  collector.Finish();
  rep->WaitUntilCaughtUp();
  rep->Stop();

  EXPECT_LT(allocs_per_txn, kAllocsPerTxnBudget)
      << "warm shipping pipeline allocated " << allocs_per_txn
      << " times per write transaction (budget " << kAllocsPerTxnBudget
      << "); the allocation-free path regressed";
}

// Update-heavy variant: every write hits an EXISTING key, so each one takes
// the 2PL lock-manager path (acquire -> grant -> release) that the fresh-key
// test above deliberately avoids. With the pooled lock table (fixed buckets,
// free-listed intrusive nodes, capacity-retaining wait queues) a warm
// uncontended update is allocation-free, so the same budget applies; before
// pooling, every Acquire allocated map nodes + deque segments and blew it.
TEST(AllocBudgetTest, UpdateHeavyWorkloadStaysUnderBudget) {
  storage::Database primary_db, backup_db;
  const TableId table = workload::SyntheticWorkload::CreateTable(&primary_db);
  workload::SyntheticWorkload::CreateTable(&backup_db);

  TxnClock clock;
  log::OnlineLogCollector collector(/*segment_records=*/256);
  txn::TwoPhaseLockingEngine engine(&primary_db, &collector, &clock);
  collector.SetReleaseHorizon([&engine] { return engine.LogHorizon(); });

  log::ChannelSegmentSource source(&collector.channel());
  core::ProtocolOptions options;
  options.num_workers = 2;
  options.snapshot_interval = std::chrono::microseconds(100);
  options.gc_every = 16;
  auto rep = core::MakeReplica(core::ProtocolKind::kC5MyRocks, &backup_db,
                               options);
  rep->Start(&source);

  constexpr std::uint64_t kKeyspace = 1024;
  std::uint64_t round = 0;
  const auto run_update_txn = [&](std::uint64_t t) {
    const std::uint64_t base = (t * kWritesPerTxn) % kKeyspace;
    const Status s = engine.ExecuteWithRetry([&](txn::Txn& txn) {
      for (std::uint32_t i = 0; i < kWritesPerTxn; ++i) {
        const std::uint64_t key = (base + i) % kKeyspace;
        const Status st =
            txn.Put(table, key, workload::EncodeIntValue(round + key));
        if (!st.ok()) return st;
      }
      return Status::Ok();
    });
    ASSERT_TRUE(s.ok()) << s.message();
    ++round;
  };

  const auto drain = [&]() {
    collector.Flush();
    const Timestamp target = clock.Latest();
    while (rep->VisibleTimestamp() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  // Seed the keyspace (these are the only inserts), then warm: the warmup
  // rounds re-write every key enough times to fill the lock-node free lists
  // and per-key version chains to steady state.
  for (std::uint64_t k = 0; k < kKeyspace; k += kWritesPerTxn) {
    const Status s = engine.ExecuteWithRetry([&](txn::Txn& txn) {
      for (std::uint32_t i = 0; i < kWritesPerTxn; ++i) {
        const Status st =
            txn.Insert(table, k + i, workload::EncodeIntValue(k + i));
        if (!st.ok()) return st;
      }
      return Status::Ok();
    });
    ASSERT_TRUE(s.ok()) << s.message();
  }
  for (std::uint64_t t = 0; t < kWarmupTxns; ++t) run_update_txn(t);
  drain();

  bench::AllocScope scope;
  for (std::uint64_t t = 0; t < kMeasuredTxns; ++t) run_update_txn(t);
  drain();
  const double allocs_per_txn =
      static_cast<double>(scope.Count()) / kMeasuredTxns;

  collector.Finish();
  rep->WaitUntilCaughtUp();
  rep->Stop();

  EXPECT_LT(allocs_per_txn, kAllocsPerTxnBudget)
      << "warm update path allocated " << allocs_per_txn
      << " times per transaction (budget " << kAllocsPerTxnBudget
      << "); the pooled lock manager or the update pipeline regressed";
}

}  // namespace
}  // namespace c5
