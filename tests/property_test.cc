// Property-based convergence sweeps: randomized mixed-operation workloads
// (insert / update / delete / put, random transaction sizes, contended key
// space) executed on both primary engines, replayed through every protocol,
// with per-row chain invariants and state-digest equality as the property.
// Also: replay under injected delivery faults (jitter + mid-replay stall).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>

#include "api/snapshot.h"
#include "core/protocol_factory.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

using core::MakeReplica;
using core::ProtocolKind;
using core::ProtocolOptions;

// A randomized transaction: 1-8 operations over a small, contended key
// space. Operation-level existence errors (inserting a present key, updating
// an absent one) are tolerated by falling back to the complementary
// operation, so every transaction commits some writes. Deletions make the
// key space churn: rows flip between live and tombstoned.
Status RandomTxn(txn::Txn& txn, TableId table, Rng& rng,
                 std::uint64_t keyspace) {
  const int ops = 1 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < ops; ++i) {
    const Key key = rng.Uniform(keyspace);
    const Value value = workload::EncodeIntValue(rng.Next());
    switch (rng.Uniform(4)) {
      case 0: {  // insert-or-update
        Status s = txn.Insert(table, key, value);
        if (s.code() == StatusCode::kAlreadyExists) {
          s = txn.Update(table, key, value);
        }
        if (!s.ok()) return s;
        break;
      }
      case 1: {  // update-or-insert
        Status s = txn.Update(table, key, value);
        if (s.code() == StatusCode::kNotFound) {
          s = txn.Insert(table, key, value);
        }
        if (!s.ok()) return s;
        break;
      }
      case 2: {  // delete if present
        const Status s = txn.Delete(table, key);
        if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
        break;
      }
      default: {  // blind write
        const Status s = txn.Put(table, key, value);
        if (!s.ok()) return s;
        break;
      }
    }
  }
  return Status::Ok();
}

struct RandomRun {
  std::unique_ptr<test::Primary> primary;
  TableId table = 0;
  log::Log log;
};

RandomRun RunRandomPrimary(bool use_2pl, std::uint64_t seed,
                           std::uint64_t keyspace, int clients,
                           std::uint64_t txns_per_client) {
  RandomRun run;
  run.primary = use_2pl ? test::Primary::Tpl() : test::Primary::Mvtso();
  run.table = workload::SyntheticWorkload::CreateTable(&run.primary->db);
  workload::RunClosedLoop(
      clients, std::chrono::milliseconds(0), txns_per_client,
      [&](std::uint32_t, Rng& rng) {
        return run.primary->engine->ExecuteWithRetry([&](txn::Txn& txn) {
          return RandomTxn(txn, run.table, rng, keyspace);
        });
      },
      seed);
  run.log = run.primary->collector->Coalesce();
  return run;
}

void CheckChainsStrictlyOrdered(storage::Database& db) {
  const auto guard = db.epochs().Enter();
  for (TableId t = 0; t < db.NumTables(); ++t) {
    const storage::Table& table = db.table(t);
    for (RowId r = 0; r < table.NumRows(); ++r) {
      Timestamp prev = kMaxTimestamp;
      for (const storage::Version* v = table.ReadLatestCommitted(r);
           v != nullptr; v = v->Next()) {
        ASSERT_LT(v->write_ts, prev);
        prev = v->write_ts;
      }
    }
  }
}

// (protocol, use_2pl, seed)
class RandomWorkloadTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, bool, int>> {
};

TEST_P(RandomWorkloadTest, ConvergesOnMixedOperations) {
  const auto [kind, use_2pl, seed] = GetParam();
  auto run = RunRandomPrimary(
      use_2pl, test::TestSeed(static_cast<std::uint64_t>(seed)),
      /*keyspace=*/64, /*clients=*/4,
      /*txns_per_client=*/200);
  ASSERT_TRUE(test::LogIsWellFormed(run.log));
  ASSERT_GT(run.log.NumRecords(), 0u);

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  auto replica = MakeReplica(kind, &backup, ProtocolOptions{
                                                .num_workers = 4,
                                            });
  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  replica->Stop();

  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp))
      << "diverged on " << core::ToString(kind)
      << (use_2pl ? " (2PL log)" : " (MVTSO log)") << " seed " << seed;
  CheckChainsStrictlyOrdered(backup);
}

const ProtocolKind kAllCorrectProtocols[] = {
    ProtocolKind::kC5,           ProtocolKind::kC5MyRocks,
    ProtocolKind::kC5Queue,      ProtocolKind::kPageGranularity,
    ProtocolKind::kTableGranularity, ProtocolKind::kKuaFu,
    ProtocolKind::kSingleThread, ProtocolKind::kQueryFresh,
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomWorkloadTest,
    ::testing::Combine(::testing::ValuesIn(kAllCorrectProtocols),
                       ::testing::Bool(), ::testing::Values(7, 1337)),
    [](const ::testing::TestParamInfo<std::tuple<ProtocolKind, bool, int>>&
           info) {
      std::string name = core::ToString(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) ? "_2pl" : "_mvtso";
      name += "_s" + std::to_string(std::get<2>(info.param));
      return name;
    });

// Cross-engine oracle: the same seeded workload executed SERIALLY (one
// client, so the transaction sequence — including every fallback decision —
// is a pure function of the seed) on MVTSO and on 2PL must produce the
// identical final table state, and a single-thread replay of each engine's
// log must land on that state again. Commit timestamps legitimately differ
// between the engines; StateDigest deliberately excludes them.
TEST(CrossEngineOracleTest, MvtsoTplAndSingleThreadReplayAgree) {
  const std::uint64_t seed = test::TestSeed(2024);
  auto mvtso = RunRandomPrimary(/*use_2pl=*/false, seed, /*keyspace=*/64,
                                /*clients=*/1, /*txns_per_client=*/400);
  auto tpl = RunRandomPrimary(/*use_2pl=*/true, seed, /*keyspace=*/64,
                              /*clients=*/1, /*txns_per_client=*/400);
  ASSERT_GT(mvtso.log.NumRecords(), 0u);
  ASSERT_EQ(mvtso.log.NumRecords(), tpl.log.NumRecords())
      << "serial execution must log the same write sequence on both engines";

  const std::uint64_t want =
      test::StateDigest(mvtso.primary->db, kMaxTimestamp);
  EXPECT_EQ(want, test::StateDigest(tpl.primary->db, kMaxTimestamp))
      << "MVTSO and 2PL diverged on the same serial workload, seed " << seed;

  for (log::Log* log : {&mvtso.log, &tpl.log}) {
    storage::Database backup;
    workload::SyntheticWorkload::CreateTable(&backup);
    log->ResetReplayState();
    log::OfflineSegmentSource source(log);
    auto replica =
        MakeReplica(ProtocolKind::kSingleThread, &backup, ProtocolOptions{});
    replica->Start(&source);
    replica->WaitUntilCaughtUp();
    replica->Stop();
    EXPECT_EQ(want, test::StateDigest(backup, kMaxTimestamp))
        << "single-thread replay diverged, seed " << seed;
  }
}

// Delivery-fault injection: the same convergence property must hold when
// segments arrive with jitter and a mid-replay stall, and MPC (pair
// atomicity + monotonicity) must hold for a concurrent reader throughout.
class FaultInjectionTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(FaultInjectionTest, ConvergesAndHoldsMpcUnderJitterAndStall) {
  const ProtocolKind kind = GetParam();

  // Paired-write log: every txn writes kA == kB plus a unique insert.
  auto primary = test::Primary::Mvtso();
  const TableId table =
      workload::SyntheticWorkload::CreateTable(&primary->db);
  constexpr Key kA = 100, kB = 200;
  for (std::uint64_t n = 0; n <= 800; ++n) {
    ASSERT_TRUE(primary->engine
                    ->ExecuteWithRetry([&](txn::Txn& txn) {
                      Status st = txn.Put(table, kA,
                                          workload::EncodeIntValue(n));
                      if (!st.ok()) return st;
                      st = txn.Put(table, kB, workload::EncodeIntValue(n));
                      if (!st.ok()) return st;
                      return txn.Insert(table, 1000 + n,
                                        workload::EncodeIntValue(n));
                    })
                    .ok());
  }
  log::Log log = primary->collector->Coalesce();
  ASSERT_GT(log.NumSegments(), 4u);

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log.ResetReplayState();

  // Stall at 2/3 of the log, opened by a watchdog after 30 ms; jitter on
  // every third segment.
  log::GatedSegmentSource gated(&log, log.NumSegments() * 2 / 3);
  log::DelayedSegmentSource jittered(&gated, [](std::size_t i) {
    return std::chrono::microseconds(i % 3 == 0 ? 300 : 0);
  });
  std::thread watchdog([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    gated.Open();
  });

  auto replica = MakeReplica(kind, &backup, {.num_workers = 4});
  auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get());
  ASSERT_NE(base, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread reader([&] {
    std::uint64_t last_seen = 0;
    Timestamp last_ts = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Snapshot reads work for every protocol, lazy ones included: Get
      // runs Query Fresh's deferred instantiation through the
      // PrepareRowRead hook.
      base->ReadOnlyTxn([&](const c5::Snapshot& snap) {
        const Timestamp ts = snap.timestamp();
        if (ts < last_ts) violation.store(true);
        last_ts = ts;
        if (ts == 0) return;
        Value va, vb;
        const std::uint64_t a =
            snap.Get(table, kA, &va).ok() ? workload::DecodeIntValue(va) : 0;
        const std::uint64_t b =
            snap.Get(table, kB, &vb).ok() ? workload::DecodeIntValue(vb) : 0;
        if (a != b) violation.store(true);
        if (a < last_seen) violation.store(true);
        last_seen = a;
      });
    }
  });

  replica->Start(&jittered);
  replica->WaitUntilCaughtUp();
  stop.store(true, std::memory_order_release);
  reader.join();
  watchdog.join();
  replica->Stop();

  EXPECT_FALSE(violation.load()) << "MPC violated under fault injection";
  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(primary->db, kMaxTimestamp));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, FaultInjectionTest,
    ::testing::ValuesIn(kAllCorrectProtocols),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = core::ToString(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace c5
