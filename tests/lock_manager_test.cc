#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace c5::txn {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point Soon(int ms = 2000) {
  return Clock::now() + std::chrono::milliseconds(ms);
}

TEST(LockManagerTest, AcquireReleaseBasic) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 0, 10, Soon()));
  EXPECT_EQ(lm.LockedRowCountApprox(), 1u);
  lm.Release(1, 0, 10);
  EXPECT_EQ(lm.LockedRowCountApprox(), 0u);
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 0, 10, Soon()));
  EXPECT_TRUE(lm.Acquire(1, 0, 10, Soon()));  // same txn: immediate
  lm.Release(1, 0, 10);
}

TEST(LockManagerTest, DistinctRowsDoNotConflict) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 0, 10, Soon()));
  EXPECT_TRUE(lm.Acquire(2, 0, 11, Soon()));
  EXPECT_TRUE(lm.Acquire(3, 1, 10, Soon()));  // same row id, other table
  lm.Release(1, 0, 10);
  lm.Release(2, 0, 11);
  lm.Release(3, 1, 10);
}

TEST(LockManagerTest, ConflictTimesOut) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 0, 10, Soon()));
  const auto start = Clock::now();
  EXPECT_FALSE(lm.Acquire(2, 0, 10, Clock::now() +
                                        std::chrono::milliseconds(50)));
  const auto waited = Clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(45));
  lm.Release(1, 0, 10);
  // After release, txn 2 can get it.
  EXPECT_TRUE(lm.Acquire(2, 0, 10, Soon()));
}

TEST(LockManagerTest, ReleaseByNonOwnerIsNoop) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 0, 10, Soon()));
  lm.Release(2, 0, 10);  // not the owner
  EXPECT_EQ(lm.LockedRowCountApprox(), 1u);
  lm.Release(1, 0, 10);
}

TEST(LockManagerTest, WaiterGetsLockAfterRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 0, 10, Soon()));
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    if (lm.Acquire(2, 0, 10, Soon())) got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  lm.Release(1, 0, 10);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(LockManagerTest, FifoGrantOrder) {
  // Stagger waiters so their arrival order is deterministic; the grant
  // order must match (§3.1: "granted the lock in the order requested").
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(100, 0, 10, Soon()));
  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&, t] {
      if (lm.Acquire(static_cast<LockManager::TxnId>(t + 1), 0, 10, Soon())) {
        {
          std::lock_guard<std::mutex> g(order_mu);
          order.push_back(t);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        lm.Release(static_cast<LockManager::TxnId>(t + 1), 0, 10);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  lm.Release(100, 0, 10);
  for (auto& w : waiters) w.join();
  ASSERT_EQ(order.size(), 4u);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(order[t], t);
}

TEST(LockManagerTest, TimedOutWaiterDoesNotBlockQueue) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 0, 10, Soon()));
  // Waiter A times out quickly; waiter B should then be granted.
  std::thread a([&] {
    EXPECT_FALSE(
        lm.Acquire(2, 0, 10, Clock::now() + std::chrono::milliseconds(30)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::atomic<bool> b_got{false};
  std::thread b([&] {
    if (lm.Acquire(3, 0, 10, Soon())) b_got.store(true);
  });
  a.join();
  lm.Release(1, 0, 10);
  b.join();
  EXPECT_TRUE(b_got.load());
}

TEST(LockManagerTest, MutualExclusionStress) {
  LockManager lm;
  std::int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto id = static_cast<LockManager::TxnId>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(lm.Acquire(id, 0, 42, Soon(10000)));
        counter++;
        lm.Release(id, 0, 42);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(lm.LockedRowCountApprox(), 0u);
}

TEST(LockManagerTest, ManyRowsConcurrently) {
  LockManager lm(8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto id = static_cast<LockManager::TxnId>(t + 1);
      for (RowId r = 0; r < 2000; ++r) {
        ASSERT_TRUE(lm.Acquire(id, 0, r, Soon(10000)));
        lm.Release(id, 0, r);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(lm.LockedRowCountApprox(), 0u);
}

}  // namespace
}  // namespace c5::txn
