#include "storage/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace c5::storage {
namespace {

std::atomic<int> g_deleted{0};

void CountingDeleter(void* p) {
  g_deleted.fetch_add(1);
  delete static_cast<int*>(p);
}

class EpochTest : public ::testing::Test {
 protected:
  void SetUp() override { g_deleted.store(0); }
};

TEST_F(EpochTest, RetireWithoutReadersFreesOnReclaim) {
  EpochManager mgr;
  mgr.Retire(new int(1), CountingDeleter);
  mgr.Retire(new int(2), CountingDeleter);
  EXPECT_EQ(mgr.RetiredCountApprox(), 2u);
  // First reclaim advances the epoch; with no active readers everything
  // retired below the new epoch is freed.
  mgr.ReclaimSome();
  mgr.ReclaimSome();
  EXPECT_EQ(g_deleted.load(), 2);
  EXPECT_EQ(mgr.RetiredCountApprox(), 0u);
}

TEST_F(EpochTest, ActiveGuardBlocksReclaim) {
  EpochManager mgr;
  {
    auto guard = mgr.Enter();
    mgr.Retire(new int(1), CountingDeleter);
    // The guard pinned the epoch at or below the retire epoch, so the
    // object must survive.
    mgr.ReclaimSome();
    EXPECT_EQ(g_deleted.load(), 0);
  }
  mgr.ReclaimSome();
  EXPECT_EQ(g_deleted.load(), 1);
}

TEST_F(EpochTest, GuardsFromOtherThreadsBlockReclaim) {
  EpochManager mgr;
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    auto guard = mgr.Enter();
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();

  mgr.Retire(new int(1), CountingDeleter);
  mgr.ReclaimSome();
  EXPECT_EQ(g_deleted.load(), 0);

  release.store(true);
  reader.join();
  mgr.ReclaimSome();
  EXPECT_EQ(g_deleted.load(), 1);
}

TEST_F(EpochTest, NestedGuardsAreSupported) {
  EpochManager mgr;
  auto g1 = mgr.Enter();
  {
    auto g2 = mgr.Enter();
  }
  mgr.Retire(new int(1), CountingDeleter);
  mgr.ReclaimSome();
  EXPECT_EQ(g_deleted.load(), 0);  // outer guard still active
}

TEST_F(EpochTest, ReclaimAllUnsafeFreesEverything) {
  EpochManager mgr;
  for (int i = 0; i < 10; ++i) mgr.Retire(new int(i), CountingDeleter);
  EXPECT_EQ(mgr.ReclaimAllUnsafe(), 10u);
  EXPECT_EQ(g_deleted.load(), 10);
}

TEST_F(EpochTest, DestructorFreesLeftovers) {
  {
    EpochManager mgr;
    mgr.Retire(new int(1), CountingDeleter);
  }
  EXPECT_EQ(g_deleted.load(), 1);
}

TEST_F(EpochTest, EpochAdvances) {
  EpochManager mgr;
  const auto before = mgr.global_epoch();
  mgr.ReclaimSome();
  EXPECT_GT(mgr.global_epoch(), before);
}

TEST_F(EpochTest, StressManyReadersAndReclaims) {
  EpochManager mgr;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> retired{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto guard = mgr.Enter();
        std::this_thread::yield();
      }
    });
  }
  std::thread retirer([&] {
    for (int i = 0; i < 20000; ++i) {
      mgr.Retire(new int(i), CountingDeleter);
      retired.fetch_add(1);
      if (i % 256 == 0) mgr.ReclaimSome();
    }
  });
  retirer.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  mgr.ReclaimSome();
  mgr.ReclaimSome();
  EXPECT_EQ(g_deleted.load(), retired.load());
}

}  // namespace
}  // namespace c5::storage
