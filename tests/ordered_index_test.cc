// Unit battery for index::OrderedIndex (PR 10): binding semantics shared
// with HashIndex (Insert / Upsert / UpsertIfNewer / Erase), streaming cursor
// boundary cases over the +2-sentinel-compatible keyspace, concurrent
// UpsertIfNewer convergence under shuffled apply orders, and the
// Reserve/no-rehash contract (readers are never invalidated mid-insert —
// a skiplist has no rehash, and this battery proves iteration stays sane
// while writers run).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/ordered_index.h"

namespace c5::index {
namespace {

TEST(OrderedIndexTest, InsertLookupEraseReinsert) {
  OrderedIndex idx;
  EXPECT_EQ(idx.Size(), 0u);
  EXPECT_TRUE(idx.Insert(42, 7));
  EXPECT_FALSE(idx.Insert(42, 8)) << "live key must not rebind via Insert";
  EXPECT_EQ(idx.Lookup(42).value(), 7u);
  EXPECT_EQ(idx.Size(), 1u);

  EXPECT_TRUE(idx.Erase(42));
  EXPECT_FALSE(idx.Erase(42)) << "double erase";
  EXPECT_FALSE(idx.Lookup(42).has_value());
  EXPECT_EQ(idx.Size(), 0u);

  // Re-insert after erase re-binds (revives the logically-erased node).
  EXPECT_TRUE(idx.Insert(42, 9));
  EXPECT_EQ(idx.Lookup(42).value(), 9u);
  EXPECT_EQ(idx.Size(), 1u);

  idx.Upsert(42, 11);
  EXPECT_EQ(idx.Lookup(42).value(), 11u);
  EXPECT_FALSE(idx.Erase(999)) << "absent key";
}

TEST(OrderedIndexTest, UpsertIfNewerKeepsNewestBinding) {
  OrderedIndex idx;
  EXPECT_TRUE(idx.UpsertIfNewer(5, 100, 10));
  EXPECT_FALSE(idx.UpsertIfNewer(5, 50, 9)) << "older ts must not rebind";
  EXPECT_EQ(idx.Lookup(5).value(), 100u);
  // Ties rebind (same committed write replayed twice), as in HashIndex.
  EXPECT_TRUE(idx.UpsertIfNewer(5, 100, 10));
  EXPECT_TRUE(idx.UpsertIfNewer(5, 200, 11));
  EXPECT_EQ(idx.LookupWithTs(5)->first, 200u);
  EXPECT_EQ(idx.LookupWithTs(5)->second, 11u);
  // Erase clears the timestamp too: any later bind lands.
  EXPECT_TRUE(idx.Erase(5));
  EXPECT_TRUE(idx.UpsertIfNewer(5, 300, 1));
  EXPECT_EQ(idx.Lookup(5).value(), 300u);
}

TEST(OrderedIndexTest, SeekBoundaryCases) {
  OrderedIndex idx;
  const Key top = OrderedIndex::kMaxUsableKey;  // 2^64 - 3
  // Keys 0 and 1 collide with the hash index's kEmpty/kTombstone sentinels
  // unless offset; the ordered index must serve them verbatim, and the top
  // usable key must come back from an unbounded-hi scan without wrapping.
  for (const Key k : {Key{0}, Key{1}, Key{5}, top}) {
    ASSERT_TRUE(idx.Insert(k, k + 1000));
  }

  // Full-space scan returns everything, ascending, key 0 first.
  std::vector<Key> got;
  for (auto c = idx.Seek(0, ~Key{0}); c.Valid(); c.Next()) {
    got.push_back(c.key());
  }
  EXPECT_EQ(got, (std::vector<Key>{0, 1, 5, top}));

  // lo == hi is empty, even at 0 and at the extremes.
  EXPECT_FALSE(idx.Seek(0, 0).Valid());
  EXPECT_FALSE(idx.Seek(5, 5).Valid());
  EXPECT_FALSE(idx.Seek(~Key{0}, ~Key{0}).Valid());

  // hi is exclusive: [0, 1) sees only key 0.
  auto c01 = idx.Seek(0, 1);
  ASSERT_TRUE(c01.Valid());
  EXPECT_EQ(c01.key(), 0u);
  EXPECT_EQ(c01.row(), 1000u);
  c01.Next();
  EXPECT_FALSE(c01.Valid());

  // A narrow band at the very top does not wrap around.
  auto ctop = idx.Seek(top, ~Key{0});
  ASSERT_TRUE(ctop.Valid());
  EXPECT_EQ(ctop.key(), top);
  ctop.Next();
  EXPECT_FALSE(ctop.Valid());

  // Erased keys are skipped by a live cursor's Settle.
  ASSERT_TRUE(idx.Erase(1));
  got.clear();
  for (auto c = idx.Seek(0, ~Key{0}); c.Valid(); c.Next()) {
    got.push_back(c.key());
  }
  EXPECT_EQ(got, (std::vector<Key>{0, 5, top}));
}

TEST(OrderedIndexTest, ForEachAscendingAndLive) {
  OrderedIndex idx;
  Rng rng(42);
  std::vector<Key> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.Next() % 100000);
  for (const Key k : keys) idx.Insert(k, k);
  std::vector<Key> seen;
  idx.ForEach([&](Key k, RowId r, Timestamp) {
    EXPECT_EQ(k, r);
    seen.push_back(k);
  });
  std::vector<Key> want(keys);
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  EXPECT_EQ(seen, want);
  EXPECT_EQ(idx.Size(), want.size());
}

// The tentpole invariant: parallel replay workers applying the records of a
// key's successive incarnations in ANY order converge to the newest row.
// Each worker applies the same (row, ts) set in its own shuffled order.
TEST(OrderedIndexTest, ConcurrentUpsertIfNewerConvergesUnderShuffle) {
  constexpr int kKeys = 512;
  constexpr int kIncarnations = 8;
  constexpr int kThreads = 8;
  OrderedIndex idx;
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x9000 + static_cast<std::uint64_t>(t));
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      std::vector<int> order(kIncarnations);
      for (int i = 0; i < kIncarnations; ++i) order[i] = i;
      for (int k = 0; k < kKeys; ++k) {
        for (int i = kIncarnations - 1; i > 0; --i) {
          std::swap(order[i],
                    order[static_cast<int>(rng.Next() % (i + 1))]);
        }
        for (const int inc : order) {
          // Incarnation `inc` of key k lives on row k*kIncarnations+inc and
          // was created at ts inc+1.
          idx.UpsertIfNewer(static_cast<Key>(k),
                            static_cast<RowId>(k * kIncarnations + inc),
                            static_cast<Timestamp>(inc + 1));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int k = 0; k < kKeys; ++k) {
    const auto bound = idx.LookupWithTs(static_cast<Key>(k));
    ASSERT_TRUE(bound.has_value());
    EXPECT_EQ(bound->first,
              static_cast<RowId>(k * kIncarnations + kIncarnations - 1))
        << "key " << k << " did not converge to the newest incarnation";
    EXPECT_EQ(bound->second, static_cast<Timestamp>(kIncarnations));
  }
  EXPECT_EQ(idx.Size(), static_cast<std::size_t>(kKeys));
}

// Concurrent racing inserts of DISTINCT fresh keys while a reader iterates:
// the reader must only ever see a sane ascending sequence (no torn nodes,
// no cycles), and after the dust settles every key is present exactly once.
TEST(OrderedIndexTest, ConcurrentInsertsWithLiveReaders) {
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 4000;
  OrderedIndex idx;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Key prev = 0;
      bool first = true;
      for (auto c = idx.Seek(0, ~Key{0}); c.Valid(); c.Next()) {
        if (!first) {
          ASSERT_GT(c.key(), prev);
        }
        first = false;
        prev = c.key();
        ASSERT_NE(c.row(), kInvalidRowId);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Interleaved key ranges so neighboring splices race across threads.
      for (Key i = 0; i < kPerThread; ++i) {
        const Key key = i * kThreads + static_cast<Key>(t);
        ASSERT_TRUE(idx.Insert(key, key * 2));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(idx.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
  Key expect = 0;
  for (auto c = idx.Seek(0, ~Key{0}); c.Valid(); c.Next()) {
    EXPECT_EQ(c.key(), expect);
    EXPECT_EQ(c.row(), expect * 2);
    ++expect;
  }
  EXPECT_EQ(expect, static_cast<Key>(kThreads) * kPerThread);
}

// Racing inserts of the SAME key must resolve to exactly one binding (the
// level-0 CAS is the commit point; losers degrade to an update attempt that
// Insert-mode rejects).
TEST(OrderedIndexTest, RacingSameKeyInsertsResolveToOneWinner) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  OrderedIndex idx;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        if (idx.Insert(static_cast<Key>(r),
                       static_cast<RowId>(t * kRounds + r))) {
          winners.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), kRounds) << "each key must have ONE winner";
  EXPECT_EQ(idx.Size(), static_cast<std::size_t>(kRounds));
  // Every bound row must be one some thread actually proposed for that key.
  for (int r = 0; r < kRounds; ++r) {
    const auto row = idx.Lookup(static_cast<Key>(r));
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(*row % kRounds, static_cast<RowId>(r));
  }
}

// Reserve is a warm-up, never a rehash: it must not disturb existing
// bindings or concurrent readers (a skiplist never relocates nodes, so a
// mid-bench Reserve is always safe — unlike a hash table's rehash stall).
TEST(OrderedIndexTest, ReserveIsNonDisruptive) {
  OrderedIndex idx;
  for (Key k = 0; k < 1000; ++k) idx.Insert(k, k);
  auto cursor = idx.Seek(100, 900);  // live cursor across the Reserve
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 100u);
  idx.Reserve(1u << 20);
  // The pre-Reserve cursor still walks the same nodes.
  std::size_t n = 0;
  for (; cursor.Valid(); cursor.Next()) ++n;
  EXPECT_EQ(n, 800u);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_EQ(idx.Lookup(k).value(), k);
  }
  EXPECT_EQ(idx.Size(), 1000u);
}

}  // namespace
}  // namespace c5::index
