// Deterministic fault-injection simulation (DST) sweeps.
//
// Every test prints the seed on failure; rerun a single scenario with
//   C5_DST_SEED=<n> ./dst_test
// The sweep size is 64 seeds by default; C5_DST_SEED_COUNT overrides it
// (the sanitizer lanes in scripts/check.sh run a quick 16-seed list).

#include "sim/dst_harness.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace c5::sim {
namespace {

std::string Describe(const DstReport& r) {
  std::ostringstream os;
  os << "seed " << r.seed << ": " << r.log_txns << " txns, "
     << r.log_records << " records; wire: " << r.wire.frames_shipped
     << " frames (" << r.wire.frames_corrupted << " corrupted, "
     << r.wire.frames_truncated << " truncated, "
     << r.wire.frames_duplicated << " duplicated, " << r.wire.frames_delayed
     << " delayed, " << r.wire.frames_rejected << " rejected, "
     << r.wire.retransmits << " retransmits, "
     << r.wire.stale_dups_delivered << " stale dups delivered); "
     << (r.plan.crash ? "crash " : "") << (r.plan.promote ? "promote " : "")
     << (r.plan.gc_every > 0 ? "gc " : "") << (r.plan.use_2pl ? "2pl" : "mvtso");
  if (r.shards_run > 1) {
    os << " sharded(" << r.shards_run << ", " << r.router_checks
       << " router checks)";
    if (r.migrations_started > 0) {
      os << " reshard(" << r.migrations_completed << " committed, "
         << r.migrations_aborted << " aborted)";
    }
  }
  for (const std::string& v : r.violations) os << "\n  VIOLATION: " << v;
  os << "\n  replay: C5_DST_SEED=" << r.seed << " ./dst_test";
  return os.str();
}

std::vector<std::uint64_t> SweepSeeds() {
  if (const char* one = std::getenv("C5_DST_SEED")) {
    return {std::strtoull(one, nullptr, 10)};
  }
  std::uint64_t count = 64;
  if (const char* n = std::getenv("C5_DST_SEED_COUNT")) {
    count = std::strtoull(n, nullptr, 10);
    if (count == 0) count = 1;
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t s = 1; s <= count; ++s) seeds.push_back(s);
  return seeds;
}

TEST(DstTest, SeedSweepHoldsAllInvariants) {
  const std::vector<std::uint64_t> seeds = SweepSeeds();
  DstChannelStats total;
  std::uint64_t crashes = 0, promotions = 0, gc_runs = 0;
  std::uint64_t restarts = 0, windows_closed = 0, scan_checks = 0;
  std::uint64_t ordered_checks = 0;
  for (const std::uint64_t seed : seeds) {
    const DstReport r = RunDst(seed);
    EXPECT_TRUE(r.ok()) << Describe(r);
    // The secondary-index oracle must fire for every seed: each seed's
    // workload writes keys, so a convergence replica with zero verified
    // ordered-index bindings means the oracle silently stopped running.
    EXPECT_GT(r.ordered_index_checks, 0u) << Describe(r);
    ordered_checks += r.ordered_index_checks;
    total.frames_corrupted += r.wire.frames_corrupted;
    total.frames_truncated += r.wire.frames_truncated;
    total.frames_duplicated += r.wire.frames_duplicated;
    total.frames_delayed += r.wire.frames_delayed;
    total.frames_rejected += r.wire.frames_rejected;
    total.retransmits += r.wire.retransmits;
    total.stale_dups_delivered += r.wire.stale_dups_delivered;
    crashes += r.plan.crash ? 1 : 0;
    // The promotion scenario only runs single-shard (sharded failover is
    // cluster_test's job), so only count it where it actually ran.
    promotions += (r.plan.promote && r.shards_run == 1) ? 1 : 0;
    gc_runs += r.plan.gc_every > 0 ? 1 : 0;
    restarts += r.crash_restarts;
    windows_closed += r.recovery_windows_closed;
    scan_checks += r.scan_checks;
  }
  // Every crash/restart incarnation must end with its recovery visibility
  // window CLOSED: a restarted replica may never leave readers pinned below
  // the inherited high-water mark once it has caught up.
  EXPECT_EQ(restarts, windows_closed);
  if (seeds.size() >= 16) {
    // The sweep must actually exercise every fault class — a plan change
    // that silently zeroes a probability should fail here, not rot.
    EXPECT_GT(total.frames_corrupted, 0u);
    EXPECT_GT(total.frames_truncated, 0u);
    EXPECT_GT(total.frames_duplicated, 0u);
    EXPECT_GT(total.frames_delayed, 0u);
    EXPECT_GT(total.frames_rejected, 0u);
    EXPECT_EQ(total.frames_rejected, total.retransmits);
    EXPECT_GT(total.stale_dups_delivered, 0u);
    EXPECT_GT(crashes, 0u);
    EXPECT_GT(promotions, 0u);
    EXPECT_GT(gc_runs, 0u);
    // The sweep must actually exercise the recovery window and the
    // range-scan oracle (one scan check per convergence replica).
    EXPECT_GT(restarts, 0u);
    EXPECT_GT(scan_checks, 0u);
    EXPECT_GT(ordered_checks, 0u);
  }
}

// The sharded sweep: every seed re-runs as TWO independent shard groups
// (DstHooks::force_shards pins the mode; the fault schedules, crash
// injection, and all per-shard oracles still derive from the seed). The
// cross-shard router oracle must actually fire — a sweep that never checked
// a placement would vacuously pass.
TEST(DstTest, ShardedSweepHoldsAllInvariants) {
  const std::vector<std::uint64_t> seeds = SweepSeeds();
  DstHooks sharded;
  sharded.force_shards = 2;
  ASSERT_FALSE(sharded.armed()) << "force_shards is a mode pin, not a hook";
  std::uint64_t router_checks = 0, restarts = 0, windows_closed = 0;
  std::uint64_t crashes = 0, scan_checks = 0;
  std::uint64_t started = 0, completed = 0, aborted = 0;
  for (const std::uint64_t seed : seeds) {
    const DstReport r = RunDst(seed, sharded);
    EXPECT_TRUE(r.ok()) << Describe(r);
    EXPECT_EQ(r.shards_run, 2) << Describe(r);
    // Secondary-index consistency holds per shard group too.
    EXPECT_GT(r.ordered_index_checks, 0u) << Describe(r);
    // The migration ledger balances per seed: every migration started
    // either commits through cutover or aborts cleanly — none may vanish
    // half-applied (invariant 10).
    EXPECT_EQ(r.migrations_started,
              r.migrations_completed + r.migrations_aborted)
        << Describe(r);
    // A seeded migration must be AUDITED: the epoch-aware router oracle has
    // to actually check placements for a run that resharded, or a cutover
    // that stranded keys would pass vacuously.
    if (r.migrations_started > 0) {
      EXPECT_GT(r.router_checks, 0u) << Describe(r);
    }
    router_checks += r.router_checks;
    restarts += r.crash_restarts;
    windows_closed += r.recovery_windows_closed;
    crashes += r.plan.crash ? 1 : 0;
    scan_checks += r.scan_checks;
    started += r.migrations_started;
    completed += r.migrations_completed;
    aborted += r.migrations_aborted;
  }
  // Recovery windows must close on the sharded crash path too.
  EXPECT_EQ(restarts, windows_closed);
  // The router oracle must be asserted (many times) per sweep, and the
  // sharded mode must keep exercising the crash and scan oracles.
  EXPECT_GT(router_checks, 0u);
  EXPECT_EQ(started, completed + aborted);
  if (seeds.size() >= 16) {
    EXPECT_GT(crashes, 0u);
    EXPECT_GT(restarts, 0u);
    EXPECT_GT(scan_checks, 0u);
    // The migration battery must exercise BOTH outcomes: epoch-bumping
    // cutovers and clean fence aborts (a probability regression that
    // silently kills either path fails here, not rots).
    EXPECT_GT(completed, 0u);
    EXPECT_GT(aborted, 0u);
  }
}

// The replay-worker sweep: every seed re-runs with a pinned worker count
// cycling through {1, 2, 4} (DstHooks::force_replay_workers is a mode pin,
// like force_shards), so the partitioned-batch pipeline's epoch-batched
// visibility holds all invariants — watermark monotonicity, recovery-window
// closure, prefix-complete snapshots, state digests — at every width,
// including the degenerate single worker and oversubscription on a 1-core
// host.
TEST(DstTest, ReplayWorkerSweepHoldsAllInvariants) {
  const std::vector<std::uint64_t> seeds = SweepSeeds();
  constexpr int kWidths[] = {1, 2, 4};
  std::uint64_t restarts = 0, windows_closed = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    DstHooks pinned;
    pinned.force_replay_workers = kWidths[i % 3];
    ASSERT_FALSE(pinned.armed())
        << "force_replay_workers is a mode pin, not a hook";
    const DstReport r = RunDst(seeds[i], pinned);
    EXPECT_TRUE(r.ok()) << "replay_workers=" << kWidths[i % 3] << "; "
                        << Describe(r);
    restarts += r.crash_restarts;
    windows_closed += r.recovery_windows_closed;
  }
  // Crash/restart must stay sound when the restarted node re-applies with a
  // different effective worker count than the segments were first applied
  // with (the override survives Restart).
  EXPECT_EQ(restarts, windows_closed);
}

TEST(DstTest, SameSeedReplaysBitForBit) {
  const DstReport a = RunDst(424242);
  const DstReport b = RunDst(424242);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest)
      << "fault schedule not a pure function of the seed";
  EXPECT_EQ(a.primary_digest, b.primary_digest)
      << "workload not a pure function of the seed";
  EXPECT_EQ(a.log_records, b.log_records);
  EXPECT_EQ(a.log_txns, b.log_txns);
  EXPECT_EQ(a.wire.frames_shipped, b.wire.frames_shipped);
  EXPECT_EQ(a.wire.frames_rejected, b.wire.frames_rejected);
  EXPECT_EQ(a.wire.delivered_segments, b.wire.delivered_segments);
  EXPECT_TRUE(a.ok()) << Describe(a);
  EXPECT_TRUE(b.ok()) << Describe(b);
}

// Same property for a pinned-sharded run with a migration in it: the whole
// reshard — moving-set choice, copy, fence, queued writes, outcome — must be
// a pure function of the seed.
TEST(DstTest, ShardedReshardReplaysBitForBit) {
  DstHooks sharded;
  sharded.force_shards = 2;
  // Find a seed whose plan drew a reshard (the draw is itself seeded, so
  // this scan is deterministic).
  std::uint64_t seed = 1;
  while (!DstPlan::FromSeed(seed).reshard) ++seed;
  const DstReport a = RunDst(seed, sharded);
  const DstReport b = RunDst(seed, sharded);
  EXPECT_EQ(a.migrations_started, 1u) << Describe(a);
  EXPECT_EQ(a.migrations_started, b.migrations_started);
  EXPECT_EQ(a.migrations_completed, b.migrations_completed);
  EXPECT_EQ(a.migrations_aborted, b.migrations_aborted);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest)
      << "reshard fault schedule not a pure function of the seed";
  EXPECT_EQ(a.primary_digest, b.primary_digest)
      << "reshard workload/migration not a pure function of the seed";
  EXPECT_EQ(a.log_records, b.log_records);
  EXPECT_EQ(a.router_checks, b.router_checks);
  EXPECT_TRUE(a.ok()) << Describe(a);
  EXPECT_TRUE(b.ok()) << Describe(b);
}

// The harness must be able to catch a real prefix violation: a transaction
// silently dropped from the stream (re-framed as a VALID segment with
// contiguous base_seq, so only the state oracles can notice).
TEST(DstTest, PlantedDroppedTransactionIsCaught) {
  DstHooks hooks;
  hooks.drop_txn_segment = 1 << 20;  // clamped to the last segment
  const DstReport r = RunDst(7, hooks);
  ASSERT_FALSE(r.ok())
      << "checker missed a silently dropped transaction; " << Describe(r);
  bool state_flagged = false;
  for (const std::string& v : r.violations) {
    if (v.find("diverges") != std::string::npos ||
        v.find("prefix") != std::string::npos) {
      state_flagged = true;
    }
  }
  EXPECT_TRUE(state_flagged) << Describe(r);
}

// ... and a GC that ignores the reader/visibility horizon: reclaiming
// history a prefix reader could still observe must trip the quartile
// prefix digests.
TEST(DstTest, PlantedGcPastHorizonIsCaught) {
  DstHooks hooks;
  hooks.gc_past_horizon = true;
  const DstReport r = RunDst(11, hooks);
  ASSERT_FALSE(r.ok())
      << "checker missed GC past the reader horizon; " << Describe(r);
  bool boundary_flagged = false;
  for (const std::string& v : r.violations) {
    if (v.find("prefix boundary") != std::string::npos) {
      boundary_flagged = true;
    }
  }
  EXPECT_TRUE(boundary_flagged) << Describe(r);
}

// Sanity on the hook plumbing itself: an unarmed hook set — including a
// non-default sentinel that is still below the armed threshold — must
// change nothing relative to a plain run (armed hooks normalize the plan,
// so accidental arming would show up as a digest difference here).
TEST(DstTest, UnarmedHooksAreInert) {
  DstHooks unarmed;
  unarmed.drop_txn_segment = -7;  // any negative value is unarmed
  ASSERT_FALSE(unarmed.armed());
  const DstReport plain = RunDst(5);
  const DstReport hooked = RunDst(5, unarmed);
  EXPECT_EQ(plain.schedule_digest, hooked.schedule_digest);
  EXPECT_EQ(plain.primary_digest, hooked.primary_digest);
  EXPECT_EQ(plain.violations.size(), hooked.violations.size());
}

}  // namespace
}  // namespace c5::sim
