// HTAP read-surface battery for the ordered-index-backed Snapshot::Scan and
// Snapshot::Aggregate (PR 10), run against a real replicated backup:
//  * streaming Scan boundary cases — key 0 is returned (the +2 sentinel
//    encoding must stay internal), lo == hi is empty, hi at the top of the
//    keyspace does not wrap;
//  * the satellite regression: a Scan costs O(1) allocations however many
//    keys it matches (the old iterator copied the whole match set into a
//    vector before the first Next());
//  * aggregation pushdown agrees with a client-side fold over Scan.
//
// bench/alloc_hook.h defines NON-inline replacement operators — one TU per
// binary; this test is its binary's only TU.

#include "bench/alloc_hook.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "api/snapshot.h"
#include "core/protocol_factory.h"
#include "index/ordered_index.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "replica/replica.h"
#include "storage/database.h"
#include "txn/two_phase_locking_engine.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

constexpr Key kTopKey = index::OrderedIndex::kMaxUsableKey;  // 2^64 - 3

class HtapScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = primary_db_.CreateTable("kv");
    backup_db_.CreateTable("kv");
    collector_ = std::make_unique<log::OnlineLogCollector>(256);
    engine_ = std::make_unique<txn::TwoPhaseLockingEngine>(
        &primary_db_, collector_.get(), &clock_);
    collector_->SetReleaseHorizon([this] { return engine_->LogHorizon(); });
    source_ =
        std::make_unique<log::ChannelSegmentSource>(&collector_->channel());
    core::ProtocolOptions options;
    options.num_workers = 2;
    options.snapshot_interval = std::chrono::microseconds(100);
    replica_ = core::MakeReplica(core::ProtocolKind::kC5, &backup_db_, options);
    replica_->Start(source_.get());
    base_ = dynamic_cast<replica::ReplicaBase*>(replica_.get());
    ASSERT_NE(base_, nullptr);
  }

  void TearDown() override {
    collector_->Finish();
    replica_->WaitUntilCaughtUp();
    replica_->Stop();
  }

  void Put(Key key, std::uint64_t value) {
    const Status s = engine_->ExecuteWithRetry([&](txn::Txn& txn) {
      return txn.Put(table_, key, workload::EncodeIntValue(value));
    });
    ASSERT_TRUE(s.ok()) << s.message();
  }

  void Delete(Key key) {
    const Status s = engine_->ExecuteWithRetry(
        [&](txn::Txn& txn) { return txn.Delete(table_, key); });
    ASSERT_TRUE(s.ok()) << s.message();
  }

  // Blocks until the backup's published snapshot covers every commit.
  void Drain() {
    collector_->Flush();
    const Timestamp target = clock_.Latest();
    while (replica_->VisibleTimestamp() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  storage::Database primary_db_, backup_db_;
  TableId table_ = 0;
  TxnClock clock_;
  std::unique_ptr<log::OnlineLogCollector> collector_;
  std::unique_ptr<txn::TwoPhaseLockingEngine> engine_;
  std::unique_ptr<log::ChannelSegmentSource> source_;
  std::unique_ptr<replica::Replica> replica_;
  replica::ReplicaBase* base_ = nullptr;
};

TEST_F(HtapScanTest, ScanBoundariesOnBackup) {
  // Keys straddling every boundary the +2 sentinel encoding endangers.
  Put(0, 1000);
  Put(1, 1001);
  Put(500, 1500);
  Put(kTopKey, 2000);
  Delete(500);
  Drain();

  base_->ReadOnlyTxn([&](const Snapshot& snap) {
    // Scan from 0 returns key 0 first; the deleted key is skipped.
    std::vector<Key> keys;
    std::vector<std::uint64_t> values;
    for (auto it = snap.Scan(table_, 0, ~Key{0}); it.Valid(); it.Next()) {
      keys.push_back(it.key());
      values.push_back(workload::DecodeIntValue(it.value()));
    }
    EXPECT_EQ(keys, (std::vector<Key>{0, 1, kTopKey}));
    EXPECT_EQ(values, (std::vector<std::uint64_t>{1000, 1001, 2000}));

    // lo == hi is empty at both extremes and in the middle.
    EXPECT_FALSE(snap.Scan(table_, 0, 0).Valid());
    EXPECT_FALSE(snap.Scan(table_, 500, 500).Valid());
    EXPECT_FALSE(snap.Scan(table_, ~Key{0}, ~Key{0}).Valid());

    // hi == max does not wrap: the band [kTopKey, 2^64-1) sees only the top
    // key, once.
    auto it = snap.Scan(table_, kTopKey, ~Key{0});
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), kTopKey);
    it.Next();
    EXPECT_FALSE(it.Valid());

    // [0, 1) returns exactly key 0 (hi exclusive at the bottom).
    auto it0 = snap.Scan(table_, 0, 1);
    ASSERT_TRUE(it0.Valid());
    EXPECT_EQ(it0.key(), 0u);
    it0.Next();
    EXPECT_FALSE(it0.Valid());
  });
}

TEST_F(HtapScanTest, ScanAllocationsAreConstantInMatchCount) {
  constexpr Key kWide = 4096;
  for (Key k = 0; k < kWide; ++k) Put(k, k);
  Drain();

  base_->ReadOnlyTxn([&](const Snapshot& snap) {
    // Warm any lazily-initialized read-path state outside the measurement.
    std::uint64_t sink = 0;
    for (auto it = snap.Scan(table_, 0, 8); it.Valid(); it.Next()) {
      sink += it.key();
    }

    const auto measure = [&](Key lo, Key hi) {
      bench::AllocScope scope;
      for (auto it = snap.Scan(table_, lo, hi); it.Valid(); it.Next()) {
        sink += workload::DecodeIntValue(it.value());
      }
      return scope.Count();
    };
    const std::uint64_t narrow = measure(0, 8);
    const std::uint64_t wide = measure(0, kWide);
    // O(1), not O(matches): the old iterator allocated a 4096-entry vector
    // (and its sort scratch) up front. The streaming iterator holds one
    // stack cursor; a handful of allocations of slack tolerates logging or
    // gtest internals, 512x fewer than a per-match copy would cost.
    EXPECT_LE(wide, narrow + 8)
        << "a 4096-match scan allocated " << wide
        << " times vs " << narrow << " for an 8-match scan — the iterator "
        << "is materializing the match set again";
    (void)sink;
  });
}

TEST_F(HtapScanTest, AggregatePushdownMatchesClientSideFold) {
  constexpr Key kKeys = 512;
  for (Key k = 0; k < kKeys; ++k) Put(k, (k * 37) % 1000);
  Delete(100);
  Delete(101);
  Drain();

  base_->ReadOnlyTxn([&](const Snapshot& snap) {
    const Key lo = 50, hi = 400;
    std::uint64_t want_rows = 0, want_sum = 0;
    std::uint64_t want_min = ~std::uint64_t{0}, want_max = 0;
    for (auto it = snap.Scan(table_, lo, hi); it.Valid(); it.Next()) {
      const std::uint64_t v = workload::DecodeIntValue(it.value());
      ++want_rows;
      want_sum += v;
      want_min = std::min(want_min, v);
      want_max = std::max(want_max, v);
    }
    ASSERT_EQ(want_rows, (hi - lo) - 2) << "the two deletes must be skipped";

    AggSpec spec;
    spec.field_offset = 0;
    spec.field_width = 8;
    for (const AggOp op : {AggOp::kSum, AggOp::kMin, AggOp::kMax}) {
      spec.op = op;
      const AggResult r = snap.Aggregate(table_, lo, hi, spec);
      EXPECT_EQ(r.rows, want_rows);
      EXPECT_EQ(r.sum, want_sum);
      EXPECT_EQ(r.min, want_min);
      EXPECT_EQ(r.max, want_max);
    }
    // A pure unfiltered count reports rows without touching payloads.
    spec.op = AggOp::kCount;
    EXPECT_EQ(snap.Aggregate(table_, lo, hi, spec).rows, want_rows);
    EXPECT_EQ(snap.Aggregate(table_, lo, hi, spec).value(AggOp::kCount),
              want_rows);

    // filter_below pushes the predicate into the same walk.
    spec.op = AggOp::kCount;
    spec.filter_below = 500;
    std::uint64_t want_below = 0;
    for (auto it = snap.Scan(table_, lo, hi); it.Valid(); it.Next()) {
      if (workload::DecodeIntValue(it.value()) < 500) ++want_below;
    }
    EXPECT_EQ(snap.Aggregate(table_, lo, hi, spec).rows, want_below);

    // Empty range: zero rows, identity min/max.
    const AggResult empty = snap.Aggregate(table_, 7, 7, AggSpec{});
    EXPECT_EQ(empty.rows, 0u);
    EXPECT_EQ(empty.min, ~std::uint64_t{0});
    EXPECT_EQ(empty.max, 0u);

    // Aggregation is allocation-free (pure pushdown, nothing materialized).
    bench::AllocScope scope;
    const AggResult all = snap.Aggregate(table_, 0, kKeys, AggSpec{});
    EXPECT_EQ(all.rows, kKeys - 2);
    EXPECT_LE(scope.Count(), 2u);
  });
}

}  // namespace
}  // namespace c5
