// Crash-the-process recovery: a real c5-server child process streams the
// seeded log over TCP, gets SIGKILLed mid-stream, and is replaced by a fresh
// process serving the same seed on a NEW ephemeral port. The subscriber's
// reconnect loop (with a resolve hook re-reading the endpoint each attempt)
// must resume the replay and land on a state digest bit-for-bit identical to
// an in-process replay of the same log. This is the recovery mode the
// in-process DST cannot exercise: the failed node loses everything,
// including its kernel socket buffers.
//
// C5_SERVER_BIN is injected by CMake as the absolute path of the c5-server
// binary ($<TARGET_FILE:c5-server>).

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/protocol_factory.h"
#include "log/segment_source.h"
#include "net/socket_segment_source.h"
#include "tests/test_util.h"
#include "workload/seeded_log.h"

namespace c5 {
namespace {

#ifndef C5_SERVER_BIN
#define C5_SERVER_BIN ""
#endif

struct Child {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

// fork/exec c5-server with stdout on a pipe; block until it announces
// "PORT <n>" so the ephemeral port is known before the test proceeds.
Child SpawnServer(const std::vector<std::string>& flags) {
  Child child;
  int fds[2];
  if (pipe(fds) != 0) return child;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return child;
  }
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(C5_SERVER_BIN));
    for (const auto& f : flags) argv.push_back(const_cast<char*>(f.c_str()));
    argv.push_back(nullptr);
    execv(C5_SERVER_BIN, argv.data());
    _exit(127);
  }
  close(fds[1]);
  std::string line;
  char ch = 0;
  while (read(fds[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  close(fds[0]);
  unsigned port = 0;
  if (std::sscanf(line.c_str(), "PORT %u", &port) == 1) {
    child.pid = pid;
    child.port = static_cast<std::uint16_t>(port);
  } else {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
  return child;
}

void Reap(pid_t pid, int sig) {
  if (pid <= 0) return;
  kill(pid, sig);
  waitpid(pid, nullptr, 0);
}

TEST(ProcessRecoveryTest, KillAndRestartServerMidStreamResumesBitForBit) {
  ASSERT_STRNE(C5_SERVER_BIN, "") << "c5-server path not injected by CMake";

  // The spec both sides agree on: the child via flags, this process via
  // BuildSeededLog. Small segments + a per-frame send delay stretch the
  // stream so the SIGKILL lands mid-transfer, not after the fact.
  workload::SeededLogSpec spec;
  spec.seed = 4242;
  spec.clients = 4;
  spec.txns_per_client = 300;
  spec.keyspace = 128;
  spec.segment_capacity = 16;
  const std::vector<std::string> flags = {
      "--seed",            std::to_string(spec.seed),
      "--clients",         std::to_string(spec.clients),
      "--txns",            std::to_string(spec.txns_per_client),
      "--keyspace",        std::to_string(spec.keyspace),
      "--segment-records", std::to_string(spec.segment_capacity),
      "--port",            "0",
      "--send-delay-ms",   "5",
  };

  // Oracle: the identical log replayed entirely in process.
  log::Log log = workload::BuildSeededLog(spec);
  const std::size_t total_frames = log.NumSegments();
  ASSERT_GT(total_frames, 20u);
  std::uint64_t want = 0;
  {
    storage::Database db;
    for (const auto& [name, expected] : workload::SeededSchema()) {
      db.CreateTable(name, expected);
    }
    log::OfflineSegmentSource offline(&log);
    auto replica =
        core::MakeReplica(core::ProtocolKind::kC5, &db, {.num_workers = 4});
    replica->Start(&offline);
    replica->WaitUntilCaughtUp();
    replica->Stop();
    want = test::StateDigest(db, kMaxTimestamp);
  }

  Child child = SpawnServer(flags);
  ASSERT_GT(child.pid, 0) << "failed to spawn " << C5_SERVER_BIN;

  // The endpoint is re-resolved on every connect attempt, so swapping the
  // atomic port mid-run points the reconnect loop at the replacement server.
  std::atomic<std::uint16_t> port{child.port};
  net::SocketSegmentSource::Options so;
  so.resolve = [&port] {
    return std::pair<std::string, std::uint16_t>{"127.0.0.1", port.load()};
  };
  so.backoff_initial = std::chrono::milliseconds(5);
  so.backoff_max = std::chrono::milliseconds(100);
  net::SocketSegmentSource source(std::move(so));

  storage::Database db;
  for (const auto& [name, expected] : workload::SeededSchema()) {
    db.CreateTable(name, expected);
  }
  auto replica =
      core::MakeReplica(core::ProtocolKind::kC5, &db, {.num_workers = 4});
  replica->Start(&source);

  // Let a prefix land, then pull the plug — SIGKILL, no goodbye.
  const std::size_t kill_after = 8;
  while (source.stats().segments_delivered.load() < kill_after) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::size_t delivered_at_kill =
      source.stats().segments_delivered.load();
  EXPECT_LT(delivered_at_kill, total_frames)
      << "stream finished before the kill; nothing mid-stream was tested";
  Reap(child.pid, SIGKILL);

  // Same seed, fresh process, fresh ephemeral port: the replacement serves
  // the byte-identical history and the subscriber resumes from its cursor.
  Child replacement = SpawnServer(flags);
  ASSERT_GT(replacement.pid, 0) << "failed to respawn " << C5_SERVER_BIN;
  port.store(replacement.port);

  replica->WaitUntilCaughtUp();
  replica->Stop();

  EXPECT_EQ(test::StateDigest(db, kMaxTimestamp), want)
      << "replay across a server crash diverged from the in-process oracle";
  EXPECT_GE(source.stats().reconnects.load(), 1u)
      << "subscriber never reconnected — the kill landed after END?";
  EXPECT_GT(source.stats().segments_delivered.load(), delivered_at_kill);

  Reap(replacement.pid, SIGTERM);
}

}  // namespace
}  // namespace c5
