#include "replica/prefix_tracker.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace c5::replica {
namespace {

TEST(PrefixTrackerTest, InOrderMarksAdvanceImmediately) {
  PrefixTracker pt(64);
  pt.Mark(0, 10);
  EXPECT_EQ(pt.Advance(), 10u);
  pt.Mark(1, 20);
  pt.Mark(2, 30);
  EXPECT_EQ(pt.Advance(), 30u);
  EXPECT_EQ(pt.watermark(), 3u);
}

TEST(PrefixTrackerTest, GapBlocksWatermark) {
  PrefixTracker pt(64);
  pt.Mark(0, 10);
  pt.Mark(2, 30);  // gap at 1
  EXPECT_EQ(pt.Advance(), 10u);
  EXPECT_EQ(pt.watermark(), 1u);
  pt.Mark(1, 20);
  EXPECT_EQ(pt.Advance(), 30u);  // 1 and 2 both advance
  EXPECT_EQ(pt.watermark(), 3u);
}

TEST(PrefixTrackerTest, VisibilityOnlyAtTxnEnds) {
  PrefixTracker pt(64);
  // Records 0,1 belong to txn ts=7 (end at 1); record 2 is txn ts=9.
  pt.Mark(0, kInvalidTimestamp);
  EXPECT_EQ(pt.Advance(), kInvalidTimestamp);  // no complete txn yet
  pt.Mark(1, 7);
  EXPECT_EQ(pt.Advance(), 7u);
  pt.Mark(2, 9);
  EXPECT_EQ(pt.Advance(), 9u);
}

TEST(PrefixTrackerTest, VisibleTimestampIsMonotonic) {
  PrefixTracker pt(64);
  pt.Mark(1, 20);
  pt.Mark(2, 30);
  EXPECT_EQ(pt.Advance(), kInvalidTimestamp);  // 0 missing
  pt.Mark(0, 10);
  EXPECT_EQ(pt.Advance(), 30u);
  EXPECT_EQ(pt.visible_ts(), 30u);
}

TEST(PrefixTrackerTest, WrapsAroundRing) {
  PrefixTracker pt(8);
  Timestamp vis = 0;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    pt.Mark(seq, seq + 1);
    vis = pt.Advance();
  }
  EXPECT_EQ(vis, 100u);
  EXPECT_EQ(pt.watermark(), 100u);
}

TEST(PrefixTrackerTest, BackpressureReleasesAfterAdvance) {
  PrefixTracker pt(8);  // tiny ring
  std::atomic<bool> marked_far{false};
  std::thread marker([&] {
    pt.Mark(0, 1);
    pt.Mark(8, 9);  // exactly capacity ahead: must wait for watermark > 0
    marked_far.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(marked_far.load());
  pt.Advance();  // watermark -> 1, unblocks
  marker.join();
  EXPECT_TRUE(marked_far.load());
}

TEST(PrefixTrackerTest, ConcurrentMarkersSingleAdvancer) {
  PrefixTracker pt(1 << 12);
  constexpr std::uint64_t kN = 200000;
  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> next{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> markers;
  for (int t = 0; t < kThreads; ++t) {
    markers.emplace_back([&] {
      while (true) {
        const std::uint64_t seq = next.fetch_add(1);
        if (seq >= kN) break;
        pt.Mark(seq, seq + 1);
      }
    });
  }
  std::thread advancer([&] {
    while (!done.load()) pt.Advance();
    pt.Advance();
  });
  for (auto& m : markers) m.join();
  done.store(true);
  advancer.join();
  EXPECT_EQ(pt.watermark(), kN);
  EXPECT_EQ(pt.visible_ts(), kN);
}

TEST(PrefixTrackerTest, RandomCompletionOrderReachesFullPrefix) {
  PrefixTracker pt(1 << 10);
  constexpr std::uint64_t kN = 512;  // within ring capacity: any order works
  std::vector<std::uint64_t> order(kN);
  for (std::uint64_t i = 0; i < kN; ++i) order[i] = i;
  Rng rng(test::TestSeed(3));
  for (std::uint64_t i = kN - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Uniform(i + 1)]);
  }
  Timestamp vis = 0;
  std::uint64_t max_marked = 0;
  for (const std::uint64_t seq : order) {
    max_marked = std::max(max_marked, seq);
    pt.Mark(seq, seq + 1);
    const Timestamp next = pt.Advance();
    EXPECT_GE(next, vis);              // monotonic
    EXPECT_LE(next, max_marked + 1);   // never beyond what was marked
    vis = next;
  }
  EXPECT_EQ(vis, kN);
}

TEST(PrefixTrackerTest, AdvanceIdempotentWhenNoNewMarks) {
  PrefixTracker pt(64);
  pt.Mark(0, 5);
  EXPECT_EQ(pt.Advance(), 5u);
  EXPECT_EQ(pt.Advance(), 5u);
  EXPECT_EQ(pt.Advance(), 5u);
}

}  // namespace
}  // namespace c5::replica
