#include "common/status.h"

#include <gtest/gtest.h>

namespace c5 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodes) {
  EXPECT_EQ(Status::NotFound().code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Aborted().code(), StatusCode::kAborted);
  EXPECT_EQ(Status::TimedOut().code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::InvalidArgument().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ResourceExhausted().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal().code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled().code(), StatusCode::kCancelled);
}

TEST(StatusTest, MessagePropagates) {
  const Status s = Status::Aborted("write conflict");
  EXPECT_EQ(s.message(), "write conflict");
  EXPECT_EQ(s.ToString(), "ABORTED: write conflict");
}

TEST(StatusTest, RetryableCodes) {
  EXPECT_TRUE(Status::Aborted().IsRetryable());
  EXPECT_TRUE(Status::TimedOut().IsRetryable());
  EXPECT_FALSE(Status::Ok().IsRetryable());
  EXPECT_FALSE(Status::NotFound().IsRetryable());
  EXPECT_FALSE(Status::Cancelled().IsRetryable());
  EXPECT_FALSE(Status::Internal().IsRetryable());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted() == Status::TimedOut());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(ToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(ToString(StatusCode::kAborted), "ABORTED");
  EXPECT_STREQ(ToString(StatusCode::kTimedOut), "TIMED_OUT");
  EXPECT_STREQ(ToString(StatusCode::kCancelled), "CANCELLED");
}

}  // namespace
}  // namespace c5
