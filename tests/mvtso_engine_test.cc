#include "txn/mvtso_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace c5::txn {
namespace {

class MvtsoTest : public ::testing::Test {
 protected:
  MvtsoTest() : engine_(&db_, &collector_, &clock_) {
    table_ = db_.CreateTable("t");
  }

  storage::Database db_;
  TxnClock clock_;
  log::PerThreadLogCollector collector_;
  MvtsoEngine engine_;
  TableId table_;
};

TEST_F(MvtsoTest, InsertAndRead) {
  ASSERT_TRUE(engine_
                  .Execute([this](Txn& txn) {
                    return txn.Insert(table_, 1, "hello");
                  })
                  .ok());
  Value v;
  ASSERT_TRUE(engine_
                  .Execute([this, &v](Txn& txn) {
                    return txn.Read(table_, 1, &v);
                  })
                  .ok());
  EXPECT_EQ(v, "hello");
}

TEST_F(MvtsoTest, ReadMissingKeyIsNotFound) {
  const Status s = engine_.Execute([this](Txn& txn) {
    Value v;
    return txn.Read(table_, 999, &v);
  });
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(MvtsoTest, UpdateMissingKeyIsNotFound) {
  const Status s = engine_.Execute([this](Txn& txn) {
    return txn.Update(table_, 999, "x");
  });
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(MvtsoTest, DuplicateInsertIsAlreadyExists) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "a");
  }).ok());
  const Status s = engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "b");
  });
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(MvtsoTest, ReadYourOwnWrites) {
  ASSERT_TRUE(engine_
                  .Execute([this](Txn& txn) {
                    Status s = txn.Insert(table_, 1, "v1");
                    if (!s.ok()) return s;
                    Value v;
                    s = txn.Read(table_, 1, &v);
                    if (!s.ok()) return s;
                    EXPECT_EQ(v, "v1");
                    s = txn.Update(table_, 1, "v2");
                    if (!s.ok()) return s;
                    s = txn.Read(table_, 1, &v);
                    EXPECT_EQ(v, "v2");
                    return s;
                  })
                  .ok());
}

TEST_F(MvtsoTest, DeleteHidesRow) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "x");
  }).ok());
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Delete(table_, 1);
  }).ok());
  const Status s = engine_.Execute([this](Txn& txn) {
    Value v;
    return txn.Read(table_, 1, &v);
  });
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(MvtsoTest, ReinsertAfterDelete) {
  for (const char* val : {"first", "second"}) {
    ASSERT_TRUE(engine_.Execute([this, val](Txn& txn) {
      return txn.Put(table_, 1, val);
    }).ok());
    ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
      return txn.Delete(table_, 1);
    }).ok());
  }
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "third");
  }).ok());
  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(v, "third");
}

TEST_F(MvtsoTest, CancelledBodyAppliesNothing) {
  const Status s = engine_.Execute([this](Txn& txn) {
    const Status st = txn.Insert(table_, 1, "doomed");
    EXPECT_TRUE(st.ok());
    return Status::Cancelled("user rollback");
  });
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  const Status read = engine_.Execute([this](Txn& txn) {
    Value v;
    return txn.Read(table_, 1, &v);
  });
  EXPECT_EQ(read.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine_.stats().user_aborts.load(), 1u);
}

TEST_F(MvtsoTest, WriteSetDeduplicatedPerRow) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Status s = txn.Insert(table_, 1, "a");
    if (!s.ok()) return s;
    s = txn.Update(table_, 1, "b");
    if (!s.ok()) return s;
    return txn.Update(table_, 1, "c");
  }).ok());
  // One commit, one version, one log record; final value is the last write.
  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(v, "c");
  const log::Log log = collector_.Coalesce();
  ASSERT_EQ(log.NumRecords(), 1u);
  EXPECT_EQ(log.segment(0)->record(0).op, OpType::kInsert);  // stays insert
  EXPECT_EQ(log.segment(0)->record(0).value, "c");
}

TEST_F(MvtsoTest, TimestampsAreUniqueAndIncreasing) {
  Timestamp first = 0, second = 0;
  engine_.Execute([&](Txn& txn) {
    first = txn.timestamp();
    return Status::Ok();
  });
  engine_.Execute([&](Txn& txn) {
    second = txn.timestamp();
    return Status::Ok();
  });
  EXPECT_GT(second, first);
  EXPECT_GT(first, kInvalidTimestamp);
}

TEST_F(MvtsoTest, LostUpdateIsPrevented) {
  // Two transactions read-modify-write the same counter concurrently, with
  // a handshake forcing interleaving: at least one must abort.
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Put(table_, 1, workload::EncodeIntValue(0));
  }).ok());

  std::atomic<int> phase{0};
  Status s1, s2;
  std::thread t1([&] {
    s1 = engine_.Execute([&](Txn& txn) {
      Value v;
      Status s = txn.Read(table_, 1, &v);
      if (!s.ok()) return s;
      phase.store(1);
      while (phase.load() != 2) std::this_thread::yield();
      return txn.Update(table_, 1, workload::EncodeIntValue(
                                       workload::DecodeIntValue(v) + 1));
    });
  });
  std::thread t2([&] {
    while (phase.load() != 1) std::this_thread::yield();
    s2 = engine_.Execute([&](Txn& txn) {
      Value v;
      Status s = txn.Read(table_, 1, &v);
      if (!s.ok()) return s;
      s = txn.Update(table_, 1, workload::EncodeIntValue(
                                    workload::DecodeIntValue(v) + 1));
      return s;
    });
    phase.store(2);
  });
  t1.join();
  t2.join();

  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  const std::uint64_t final_value = workload::DecodeIntValue(v);
  const int commits = (s1.ok() ? 1 : 0) + (s2.ok() ? 1 : 0);
  EXPECT_EQ(final_value, static_cast<std::uint64_t>(commits))
      << "s1=" << s1 << " s2=" << s2;
}

TEST_F(MvtsoTest, ConcurrentCountersConvergeWithRetry) {
  // N threads x M increments on a shared counter with retries: the final
  // value must be exactly N*M (serializability sanity under contention).
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Put(table_, 1, workload::EncodeIntValue(0));
  }).ok());
  constexpr int kThreads = 8, kIncr = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < kIncr; ++i) {
        const Status s = engine_.ExecuteWithRetry(
            [this](Txn& txn) {
              Value v;
              Status st = txn.Read(table_, 1, &v);
              if (!st.ok()) return st;
              return txn.Update(table_, 1,
                                workload::EncodeIntValue(
                                    workload::DecodeIntValue(v) + 1));
            },
            /*max_attempts=*/100000);
        ASSERT_TRUE(s.ok()) << s;
      }
    });
  }
  for (auto& t : threads) t.join();
  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(workload::DecodeIntValue(v),
            static_cast<std::uint64_t>(kThreads) * kIncr);
}

TEST_F(MvtsoTest, ConcurrentDisjointInsertsAllCommit) {
  constexpr int kThreads = 8, kPer = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPer; ++i) {
        const Key k = static_cast<Key>(t) * kPer + i + 100;
        ASSERT_TRUE(engine_
                        .ExecuteWithRetry([this, k](Txn& txn) {
                          return txn.Insert(table_, k, "v");
                        })
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(engine_.stats().commits.load(),
            static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(db_.index(table_).Size(), static_cast<std::size_t>(kThreads) * kPer);
}

TEST_F(MvtsoTest, LogRecordsCarryCommitTimestampAndBoundaries) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Status s = txn.Insert(table_, 1, "a");
    if (!s.ok()) return s;
    return txn.Insert(table_, 2, "b");
  }).ok());
  const log::Log log = collector_.Coalesce();
  ASSERT_EQ(log.NumRecords(), 2u);
  const auto& r0 = log.segment(0)->record(0);
  const auto& r1 = log.segment(0)->record(1);
  EXPECT_EQ(r0.commit_ts, r1.commit_ts);
  EXPECT_FALSE(r0.last_in_txn);
  EXPECT_TRUE(r1.last_in_txn);
  EXPECT_EQ(r0.prev_ts, kInvalidTimestamp);  // primary leaves it unset
}

TEST_F(MvtsoTest, AbortedTxnsProduceNoLog) {
  engine_.Execute([this](Txn& txn) {
    const Status s = txn.Insert(table_, 1, "x");
    EXPECT_TRUE(s.ok());
    return Status::Cancelled();
  });
  EXPECT_EQ(collector_.BufferedTxns(), 0u);
}

TEST_F(MvtsoTest, ReadOnlyTxnsProduceNoLog) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "x");
  }).ok());
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Value v;
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(collector_.BufferedTxns(), 1u);  // only the insert
}

TEST_F(MvtsoTest, GcHorizonTrailsActiveTxns) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "x");
  }).ok());
  const Timestamp h = engine_.GcHorizon();
  EXPECT_LT(h, clock_.Latest() + 1);
}

TEST_F(MvtsoTest, SnapshotReadsAreStableUnderConcurrentWrites) {
  // A multi-read transaction must see one consistent snapshot even while a
  // writer races: both keys are updated together, so a reader either sees
  // both old or both new values (never a mix) — or aborts.
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Status s = txn.Put(table_, 1, workload::EncodeIntValue(0));
    if (!s.ok()) return s;
    return txn.Put(table_, 2, workload::EncodeIntValue(0));
  }).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t n = 1;
    while (!stop.load()) {
      engine_.ExecuteWithRetry([&](Txn& txn) {
        Status s = txn.Update(table_, 1, workload::EncodeIntValue(n));
        if (!s.ok()) return s;
        return txn.Update(table_, 2, workload::EncodeIntValue(n));
      });
      ++n;
    }
  });

  for (int i = 0; i < 2000; ++i) {
    std::uint64_t a = 0, b = 0;
    const Status s = engine_.Execute([&](Txn& txn) {
      Value v;
      Status st = txn.Read(table_, 1, &v);
      if (!st.ok()) return st;
      a = workload::DecodeIntValue(v);
      st = txn.Read(table_, 2, &v);
      if (!st.ok()) return st;
      b = workload::DecodeIntValue(v);
      return Status::Ok();
    });
    if (s.ok()) {
      ASSERT_EQ(a, b) << "torn snapshot at iteration " << i;
    }
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace c5::txn
