// Session guarantees across multiple backups (§2.3): monotonic reads and
// read-your-writes via sticky sessions and client-tracked tokens, with
// backups at different replication lag.

#include "replica/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/protocol_factory.h"
#include "replica/query_fresh_replica.h"
#include "ha/recovery.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

using core::MakeReplica;
using core::ProtocolKind;
using replica::BackupSet;
using replica::ClientSession;
using replica::ReplicaBase;
using replica::RoutingPolicy;

// Two backups over the same log: FAST is fully caught up; SLOW is gated at
// half the segments until Release() runs. Sessions read through both.
struct TwoBackupWorld {
  test::SyntheticRun run;
  storage::Database fast_db;
  storage::Database slow_db;
  TableId table = 0;
  std::unique_ptr<replica::Replica> fast;
  std::unique_ptr<replica::Replica> slow;
  std::unique_ptr<log::OfflineSegmentSource> fast_source;
  std::unique_ptr<log::GatedSegmentSource> slow_source;
  log::Log slow_log;  // a second copy so the two replays do not share
                      // per-segment replay state (prev_ts, preprocessed)
  BackupSet set;

  explicit TwoBackupWorld(std::uint64_t txns_per_client = 150) {
    run = test::RunSyntheticPrimary(/*adversarial=*/false, /*clients=*/2,
                                    txns_per_client);
    table = run.table;
    // Deep-copy the log for the slow backup (same records/timestamps).
    std::uint64_t seq = 0;
    for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
      auto seg = std::make_unique<log::LogSegment>(seq);
      for (const auto& rec : run.log.segment(s)->records()) {
        log::LogRecord copy = rec;
        copy.prev_ts = kInvalidTimestamp;
        seg->Append(copy);
      }
      seq += seg->size();
      slow_log.AppendSegment(std::move(seg));
    }

    workload::SyntheticWorkload::CreateTable(&fast_db);
    workload::SyntheticWorkload::CreateTable(&slow_db);
    run.log.ResetReplayState();

    fast_source = std::make_unique<log::OfflineSegmentSource>(&run.log);
    slow_source = std::make_unique<log::GatedSegmentSource>(
        &slow_log, slow_log.NumSegments() / 2);

    fast = MakeReplica(ProtocolKind::kC5, &fast_db, {.num_workers = 2});
    slow = MakeReplica(ProtocolKind::kC5, &slow_db, {.num_workers = 2});
    fast->Start(fast_source.get());
    slow->Start(slow_source.get());
    fast->WaitUntilCaughtUp();  // fast is fully caught up
    // slow is stalled at its gate.

    set.Add(dynamic_cast<ReplicaBase*>(fast.get()));
    set.Add(dynamic_cast<ReplicaBase*>(slow.get()));
  }

  void ReleaseSlow() {
    slow_source->Open();
    slow->WaitUntilCaughtUp();
  }

  ~TwoBackupWorld() {
    slow_source->Open();
    fast->Stop();
    slow->Stop();
  }

  // A key guaranteed to be written late in the log (client 0's last insert).
  Key LateKey() const {
    Key late = 0;
    Timestamp late_ts = 0;
    for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
      for (const auto& rec : run.log.segment(s)->records()) {
        if (rec.commit_ts >= late_ts) {
          late_ts = rec.commit_ts;
          late = rec.key;
        }
      }
    }
    return late;
  }
};

TEST(SessionTest, ReadYourWritesRoutesAroundLaggingBackup) {
  TwoBackupWorld world;
  // The client "wrote" the last transaction: its token covers the log tail.
  ClientSession session(&world.set,
                        {.policy = RoutingPolicy::kTokenRouted});
  session.OnWrite(world.run.log.MaxTimestamp());

  Value v;
  const Status s = session.Read(world.table, world.LateKey(), &v);
  EXPECT_TRUE(s.ok()) << s.message();
  // Only the fast backup could have served it.
  EXPECT_EQ(session.stats().reads_per_backup[0], 1u);
  EXPECT_EQ(session.stats().reads_per_backup[1], 0u);
}

TEST(SessionTest, StickySessionWaitsForItsBackup) {
  TwoBackupWorld world;
  ClientSession session(
      &world.set, {.policy = RoutingPolicy::kSticky,
                   .sticky_index = 1,  // pinned to the SLOW backup
                   .wait_timeout = std::chrono::milliseconds(50)});
  session.OnWrite(world.run.log.MaxTimestamp());

  // The pinned backup is gated: the read must time out rather than violate
  // read-your-writes by serving stale state or silently switching backups.
  Value v;
  EXPECT_EQ(session.Read(world.table, world.LateKey(), &v).code(),
            StatusCode::kTimedOut);
  EXPECT_EQ(session.stats().timeouts, 1u);

  // Once the backup catches up, the same session read succeeds.
  world.ReleaseSlow();
  EXPECT_TRUE(session.Read(world.table, world.LateKey(), &v).ok());
  EXPECT_EQ(session.stats().reads_per_backup[1], 1u);
}

TEST(SessionTest, FreshestPolicyPrefersCaughtUpBackup) {
  TwoBackupWorld world;
  ClientSession session(&world.set, {.policy = RoutingPolicy::kFreshest});
  Value v;
  for (int i = 0; i < 10; ++i) {
    (void)session.Read(world.table, world.LateKey(), &v);
  }
  EXPECT_EQ(session.stats().reads_per_backup[0], 10u);
  EXPECT_EQ(session.stats().reads_per_backup[1], 0u);
}

TEST(SessionTest, TokenRoutedSpreadsLoadWhenBothEligible) {
  TwoBackupWorld world;
  world.ReleaseSlow();
  ClientSession session(&world.set,
                        {.policy = RoutingPolicy::kTokenRouted});
  Value v;
  for (int i = 0; i < 10; ++i) {
    (void)session.Read(world.table, world.LateKey(), &v);
  }
  EXPECT_EQ(session.stats().reads_per_backup[0], 5u);
  EXPECT_EQ(session.stats().reads_per_backup[1], 5u);
}

TEST(SessionTest, TokenNeverRegresses) {
  TwoBackupWorld world;
  world.ReleaseSlow();
  ClientSession session(&world.set,
                        {.policy = RoutingPolicy::kTokenRouted});
  Value v;
  Timestamp last = 0;
  for (int i = 0; i < 20; ++i) {
    (void)session.Read(world.table, world.LateKey(), &v);
    EXPECT_GE(session.token(), last);
    last = session.token();
  }
  EXPECT_GE(last, world.run.log.MaxTimestamp());
}

// Monotonic reads across backups while both are applying the log live: a
// counter row is incremented by every transaction; a token-routed session
// alternating between two replaying backups must never observe the counter
// go backwards.
TEST(SessionTest, MonotonicReadsAcrossLiveBackups) {
  // Build a log of monotone counter updates.
  auto primary = test::Primary::Mvtso();
  const TableId table =
      workload::SyntheticWorkload::CreateTable(&primary->db);
  constexpr Key kCounter = 3;
  for (std::uint64_t n = 0; n <= 500; ++n) {
    ASSERT_TRUE(primary->engine
                    ->ExecuteWithRetry([&](txn::Txn& txn) {
                      return txn.Put(table, kCounter,
                                     workload::EncodeIntValue(n));
                    })
                    .ok());
  }
  log::Log log_a = primary->collector->Coalesce();
  // Copy for backup B.
  log::Log log_b;
  std::uint64_t seq = 0;
  for (std::size_t s = 0; s < log_a.NumSegments(); ++s) {
    auto seg = std::make_unique<log::LogSegment>(seq);
    for (const auto& rec : log_a.segment(s)->records()) {
      log::LogRecord copy = rec;
      copy.prev_ts = kInvalidTimestamp;
      seg->Append(copy);
    }
    seq += seg->size();
    log_b.AppendSegment(std::move(seg));
  }

  storage::Database db_a, db_b;
  workload::SyntheticWorkload::CreateTable(&db_a);
  workload::SyntheticWorkload::CreateTable(&db_b);
  log::OfflineSegmentSource src_a_inner(&log_a);
  log::OfflineSegmentSource src_b_inner(&log_b);
  // Different jitter per backup so their visibility frontiers interleave.
  log::DelayedSegmentSource src_a(&src_a_inner, [](std::size_t i) {
    return std::chrono::microseconds(i % 3 == 0 ? 400 : 0);
  });
  log::DelayedSegmentSource src_b(&src_b_inner, [](std::size_t i) {
    return std::chrono::microseconds(i % 2 == 0 ? 700 : 0);
  });

  auto a = MakeReplica(ProtocolKind::kC5, &db_a, {.num_workers = 2});
  auto b = MakeReplica(ProtocolKind::kC5, &db_b, {.num_workers = 2});
  a->Start(&src_a);
  b->Start(&src_b);

  BackupSet set;
  set.Add(dynamic_cast<ReplicaBase*>(a.get()));
  set.Add(dynamic_cast<ReplicaBase*>(b.get()));

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread client([&] {
    ClientSession session(&set, {.policy = RoutingPolicy::kTokenRouted});
    std::uint64_t last_seen = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Value v;
      const Status s = session.Read(table, kCounter, &v);
      if (!s.ok()) continue;  // counter not visible anywhere yet
      const std::uint64_t n = workload::DecodeIntValue(v);
      if (n < last_seen) violation.store(true);
      last_seen = n;
    }
    // Final read after both caught up must see the last value.
    Value v;
    if (session.Read(table, kCounter, &v).ok()) {
      if (workload::DecodeIntValue(v) != 500u) violation.store(true);
    } else {
      violation.store(true);
    }
  });

  a->WaitUntilCaughtUp();
  b->WaitUntilCaughtUp();
  stop.store(true, std::memory_order_release);
  client.join();
  a->Stop();
  b->Stop();
  EXPECT_FALSE(violation.load()) << "session observed a counter regression";
}

// Control experiment: WITHOUT a session token, alternating between backups
// at different lag does observe regressions (this is the §2.3 problem the
// session layer exists to solve). Uses raw ReadAtVisible round-robin.
TEST(SessionTest, NoTokenRoundRobinDoesRegress) {
  TwoBackupWorld world(/*txns_per_client=*/200);

  // fast is caught up, slow is gated at half: alternating raw reads of a
  // key that changes between the two positions would regress. Demonstrate
  // with visibility timestamps (deterministic, no timing dependence).
  auto* fast = dynamic_cast<ReplicaBase*>(world.fast.get());
  auto* slow = dynamic_cast<ReplicaBase*>(world.slow.get());
  EXPECT_GT(fast->VisibleTimestamp(), slow->VisibleTimestamp())
      << "precondition: backups at different lag";

  // Raw alternation: snapshot sequence regresses.
  const Timestamp t1 = fast->VisibleTimestamp();
  const Timestamp t2 = slow->VisibleTimestamp();
  EXPECT_LT(t2, t1) << "raw round-robin exposes a regressing snapshot";

  // Session alternation: never regresses (the slow backup is skipped).
  ClientSession session(&world.set,
                        {.policy = RoutingPolicy::kTokenRouted});
  Value v;
  (void)session.Read(world.table, world.LateKey(), &v);
  const Timestamp tok = session.token();
  (void)session.Read(world.table, world.LateKey(), &v);
  EXPECT_GE(session.token(), tok);
  EXPECT_EQ(session.stats().reads_per_backup[1], 0u)
      << "session must not read from the backup below its token";
}


// Sessions are protocol-agnostic: a fleet mixing an eager backup (C5) with
// a lazy one (Query Fresh) still provides the session guarantees — the
// lazy backup's ReadAtVisible instantiates on demand, and its ingest-time
// visibility makes it eligible early.
TEST(SessionTest, MixedProtocolFleetServesConsistently) {
  auto primary = test::Primary::Mvtso();
  const TableId table =
      workload::SyntheticWorkload::CreateTable(&primary->db);
  constexpr Key kCounter = 11;
  for (std::uint64_t n = 0; n <= 200; ++n) {
    ASSERT_TRUE(primary->engine
                    ->ExecuteWithRetry([&](txn::Txn& txn) {
                      return txn.Put(table, kCounter,
                                     workload::EncodeIntValue(n));
                    })
                    .ok());
  }
  log::Log log_a = primary->collector->Coalesce();
  log::Log log_b;
  std::uint64_t seq = 0;
  for (std::size_t s = 0; s < log_a.NumSegments(); ++s) {
    auto seg = std::make_unique<log::LogSegment>(seq);
    for (const auto& rec : log_a.segment(s)->records()) seg->Append(rec);
    seq += seg->size();
    log_b.AppendSegment(std::move(seg));
  }

  storage::Database db_eager, db_lazy;
  workload::SyntheticWorkload::CreateTable(&db_eager);
  workload::SyntheticWorkload::CreateTable(&db_lazy);
  log::OfflineSegmentSource src_eager(&log_a);
  log::OfflineSegmentSource src_lazy(&log_b);
  auto eager = MakeReplica(ProtocolKind::kC5, &db_eager, {.num_workers = 2});
  replica::QueryFreshReplica::Options lazy_opts;
  lazy_opts.leave_lazy_after_catchup = true;  // stays lazy: reads must
                                              // instantiate on demand
  replica::QueryFreshReplica lazy(&db_lazy, lazy_opts);
  eager->Start(&src_eager);
  lazy.Start(&src_lazy);
  eager->WaitUntilCaughtUp();
  lazy.WaitUntilCaughtUp();

  BackupSet set;
  set.Add(dynamic_cast<ReplicaBase*>(eager.get()));
  set.Add(&lazy);

  ClientSession session(&set, {.policy = RoutingPolicy::kTokenRouted});
  session.OnWrite(log_a.MaxTimestamp());
  Value v;
  std::uint64_t last = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session.Read(table, kCounter, &v).ok());
    const std::uint64_t n = workload::DecodeIntValue(v);
    EXPECT_EQ(n, 200u) << "token covers the tail: both backups must serve "
                          "the final value";
    EXPECT_GE(n, last);
    last = n;
  }
  // Both backups served some reads (the lazy one is eligible because its
  // ingest watermark covers the token).
  EXPECT_GT(session.stats().reads_per_backup[0], 0u);
  EXPECT_GT(session.stats().reads_per_backup[1], 0u);
  eager->Stop();
  lazy.Stop();
}

}  // namespace
}  // namespace c5

