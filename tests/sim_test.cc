// Validates the §3.1 discrete-event model against the paper's closed forms.

#include "sim/lag_model.h"

#include <gtest/gtest.h>

#include <tuple>

namespace c5::sim {
namespace {

SimConfig DefaultConfig() {
  SimConfig c;
  c.cores = 64;
  c.primary_op_cost = 1.0;  // e
  c.backup_op_cost = 1.0;   // d
  c.writes_per_txn = 4;     // n > e/d
  c.num_txns = 500;
  return c;
}

TEST(SimPrimaryTest, MatchesClosedForm) {
  // Proof of Theorem 1: f_p(T_i) = (n + i) e when m > n.
  const SimConfig c = DefaultConfig();
  const auto fp = SimulatePrimary(c);
  for (int i = 0; i < c.num_txns; ++i) {
    EXPECT_DOUBLE_EQ(fp[i],
                     (c.writes_per_txn + i) * c.primary_op_cost)
        << "at txn " << i;
  }
}

TEST(SimTransactionGranularityTest, MatchesTheoremOneLag) {
  // f_b(T_i) = n e + (i + 1) n d  =>  lag(T_i) = i (nd - e) + nd.
  const SimConfig c = DefaultConfig();
  const SimResult r = SimulateBackup(c, BackupGranularity::kTransaction);
  for (int i = 0; i < c.num_txns; ++i) {
    EXPECT_NEAR(r.Lag(i), TheoremOneLag(c, i), 1e-9) << "at txn " << i;
  }
}

TEST(SimTransactionGranularityTest, LagGrowsWithoutBound) {
  SimConfig c = DefaultConfig();
  c.num_txns = 2000;
  const SimResult r = SimulateBackup(c, BackupGranularity::kTransaction);
  EXPECT_GT(r.FinalLag(), r.Lag(0) * 100);
  // Strictly increasing lag.
  EXPECT_GT(r.Lag(1000), r.Lag(100));
  EXPECT_GT(r.Lag(1999), r.Lag(1000));
}

TEST(SimPageGranularityTest, LagGrowsWithoutBound) {
  SimConfig c = DefaultConfig();
  c.num_txns = 2000;
  const SimResult r = SimulateBackup(c, BackupGranularity::kPage);
  // The unique-writes page queue needs (n-1)d per transaction against an
  // arrival period of e: with n=4, d=e the queue grows linearly.
  EXPECT_GT(r.FinalLag(), 100 * (c.writes_per_txn * c.backup_op_cost));
  EXPECT_GT(r.Lag(1999), r.Lag(500));
}

TEST(SimRowGranularityTest, LagIsBounded) {
  SimConfig c = DefaultConfig();
  c.num_txns = 5000;
  const SimResult r = SimulateBackup(c, BackupGranularity::kRow);
  // Row granularity mirrors the primary's constraints (Theorem 2): the hot
  // queue drains at one write per d <= e, so lag stays O(nd).
  EXPECT_LE(r.MaxLag(), 3.0 * c.writes_per_txn * c.backup_op_cost);
  // And lag at the end is no worse than early lag by more than a constant.
  EXPECT_NEAR(r.Lag(4999), r.Lag(100), 2.0 * c.backup_op_cost);
}

TEST(SimRowGranularityTest, FasterBackupNeverLagsMore) {
  SimConfig c = DefaultConfig();
  c.backup_op_cost = 0.5;  // d < e
  const SimResult fast = SimulateBackup(c, BackupGranularity::kRow);
  c.backup_op_cost = 1.0;
  const SimResult slow = SimulateBackup(c, BackupGranularity::kRow);
  EXPECT_LE(fast.MaxLag(), slow.MaxLag() + 1e-9);
}

TEST(SimTransactionGranularityTest, FastEnoughBackupKeepsUp) {
  // When nd <= e the theorem's construction no longer grows: with d small
  // enough the serial backup drains faster than arrivals.
  SimConfig c = DefaultConfig();
  c.backup_op_cost = 0.2;  // nd = 0.8 < e = 1
  c.num_txns = 2000;
  const SimResult r = SimulateBackup(c, BackupGranularity::kTransaction);
  EXPECT_LE(r.MaxLag(), 10.0);
  EXPECT_NEAR(r.Lag(1999), r.Lag(100), 1.0);
}

TEST(SimTest, LagNeverNegative) {
  for (const auto g : {BackupGranularity::kTransaction,
                       BackupGranularity::kPage, BackupGranularity::kRow}) {
    const SimResult r = SimulateBackup(DefaultConfig(), g);
    for (int i = 0; i < DefaultConfig().num_txns; ++i) {
      ASSERT_GE(r.Lag(i), 0.0);
    }
  }
}

TEST(SimTest, RowDominatesCoarserGranularities) {
  SimConfig c = DefaultConfig();
  c.num_txns = 1000;
  const double row = SimulateBackup(c, BackupGranularity::kRow).MaxLag();
  const double page = SimulateBackup(c, BackupGranularity::kPage).MaxLag();
  const double txn =
      SimulateBackup(c, BackupGranularity::kTransaction).MaxLag();
  EXPECT_LE(row, page);
  EXPECT_LE(row, txn);
}

TEST(SimTest, MoreWritesPerTxnWorsensTransactionGranularity) {
  // Fig. 7 / Fig. 11's x-axis effect: growing n widens the gap.
  SimConfig c = DefaultConfig();
  c.num_txns = 1000;
  c.writes_per_txn = 2;
  const double lag2 =
      SimulateBackup(c, BackupGranularity::kTransaction).FinalLag();
  c.writes_per_txn = 8;
  const double lag8 =
      SimulateBackup(c, BackupGranularity::kTransaction).FinalLag();
  EXPECT_GT(lag8, lag2 * 2);
}


// Property sweep over the theorem's parameter space: for every (n, e, d, m)
// with m > n > e/d and nd > e, the simulator must match the closed forms
// EXACTLY, transaction-granularity lag must grow without bound, and
// row-granularity lag must stay bounded by a workload-independent constant.
class TheoremSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double, double, int>> {
};

TEST_P(TheoremSweepTest, ClosedFormsHoldAcrossParameterSpace) {
  const auto [n, e, d, m] = GetParam();
  SimConfig c;
  c.writes_per_txn = n;
  c.primary_op_cost = e;
  c.backup_op_cost = d;
  c.cores = m;
  c.num_txns = 400;
  ASSERT_GT(m, n);                      // proof precondition m > n
  ASSERT_GT(n * d, e);                  // proof precondition nd > e
  ASSERT_LE(d, e);                      // model assumption d <= e

  // f_p(T_i) = (n + i) e.
  const auto fp = SimulatePrimary(c);
  for (int i = 0; i < c.num_txns; ++i) {
    ASSERT_NEAR(fp[i], (n + i) * e, 1e-9) << "f_p mismatch at " << i;
  }

  // Transaction granularity: lag(T_i) = i (nd - e) + nd, exactly.
  const auto txn = SimulateBackup(c, BackupGranularity::kTransaction);
  for (int i = 0; i < c.num_txns; i += 37) {
    ASSERT_NEAR(txn.Lag(i), TheoremOneLag(c, i), 1e-9)
        << "Theorem 1 mismatch at " << i;
  }
  ASSERT_GT(txn.FinalLag(), txn.Lag(0)) << "lag must grow";

  // Row granularity: lag bounded by nd + d for every i (the backup's hot-row
  // chain drains at d per write while uniques run fully parallel).
  const auto row = SimulateBackup(c, BackupGranularity::kRow);
  for (int i = 0; i < c.num_txns; ++i) {
    ASSERT_LE(row.Lag(i), n * d + d + 1e-9) << "row lag unbounded at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSpace, TheoremSweepTest,
    ::testing::Values(
        std::make_tuple(2, 1.0, 1.0, 8),      // minimal n
        std::make_tuple(4, 1.0, 1.0, 64),     // the paper's illustration
        std::make_tuple(4, 1.0, 0.5, 64),     // backup 2x faster, nd > e
        std::make_tuple(8, 2.0, 1.0, 32),     // slower primary ops
        std::make_tuple(16, 1.0, 0.25, 128),  // 4x faster backup, large n
        std::make_tuple(64, 1.0, 1.0, 128),   // wide transactions
        std::make_tuple(3, 2.5, 1.0, 16)),    // fractional e/d boundary
    [](const ::testing::TestParamInfo<std::tuple<int, double, double, int>>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<3>(info.param)) + "_ed" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100)) +
             "_" +
             std::to_string(
                 static_cast<int>(std::get<2>(info.param) * 100));
    });

}  // namespace
}  // namespace c5::sim

