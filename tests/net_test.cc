// The socket transport end to end: a backup fed by SocketSegmentSource over
// real loopback TCP must replay bit-for-bit identically to the in-process
// path, survive a corrupted frame through NAK + resync + retransmit, and
// survive a mid-stream server disconnect through reconnect + resume. Every
// listener binds port 0 (net::TcpListener's ephemeral allocation), so
// parallel ctest lanes never collide.

#include "net/socket_segment_source.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "api/cluster.h"
#include "core/protocol_factory.h"
#include "log/segment_source.h"
#include "net/ship_protocol.h"
#include "net/ship_server.h"
#include "net/socket.h"
#include "tests/test_util.h"
#include "workload/seeded_log.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

// Replays `source` through a fresh C5 replica over the seeded schema and
// returns the final state digest.
std::uint64_t ReplayDigest(log::SegmentSource* source) {
  storage::Database db;
  for (const auto& [name, expected] : workload::SeededSchema()) {
    db.CreateTable(name, expected);
  }
  auto replica = core::MakeReplica(core::ProtocolKind::kC5, &db,
                                   {.num_workers = 4});
  replica->Start(source);
  replica->WaitUntilCaughtUp();
  replica->Stop();
  return test::StateDigest(db, kMaxTimestamp);
}

// The oracle: the same log replayed entirely in process.
std::uint64_t InProcessDigest(log::Log* log) {
  log::OfflineSegmentSource source(log);
  return ReplayDigest(&source);
}

workload::SeededLogSpec TestSpec(std::uint64_t seed) {
  workload::SeededLogSpec spec;
  spec.seed = seed;
  spec.clients = 3;
  spec.txns_per_client = 120;
  spec.keyspace = 128;
  spec.segment_capacity = 32;  // many frames = many fault windows
  return spec;
}

TEST(NetTest, SocketRoundTripReplaysBitForBit) {
  auto spec = TestSpec(test::TestSeed(11));
  log::Log log = workload::BuildSeededLog(spec);
  ASSERT_GT(log.NumSegments(), 4u);
  const std::uint64_t want = InProcessDigest(&log);

  net::ShipServer server;
  ASSERT_TRUE(server.Start().ok());
  server.PublishLog(log);
  server.FinishLog();

  net::SocketSegmentSource::Options so;
  so.port = server.port();
  net::SocketSegmentSource source(std::move(so));
  EXPECT_EQ(ReplayDigest(&source), want)
      << "socket-fed replay diverged from the in-process path";

  EXPECT_EQ(source.stats().connects.load(), 1u);
  EXPECT_EQ(source.stats().naks_sent.load(), 0u);
  EXPECT_EQ(source.stats().reconnects.load(), 0u);
  EXPECT_GT(source.stats().segments_delivered.load(), 0u);
  EXPECT_EQ(source.expected_seq(), server.end_seq());
  server.Stop();
}

TEST(NetTest, CorruptFrameRecoversViaNakAndRetransmit) {
  auto spec = TestSpec(test::TestSeed(13));
  log::Log log = workload::BuildSeededLog(spec);
  const std::uint64_t want = InProcessDigest(&log);

  net::ShipServer::Options options;
  options.corrupt_frame = 2;  // flip a payload byte of the 3rd frame sent
  net::ShipServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.PublishLog(log);
  server.FinishLog();

  net::SocketSegmentSource::Options so;
  so.port = server.port();
  net::SocketSegmentSource source(std::move(so));
  EXPECT_EQ(ReplayDigest(&source), want)
      << "NAK-recovered replay diverged from the in-process path";

  EXPECT_GE(source.stats().decode_rejects.load(), 1u);
  EXPECT_GE(source.stats().naks_sent.load(), 1u);
  EXPECT_GE(source.stats().resyncs_seen.load(), 1u);
  bool server_saw_nak = false;
  for (const auto& c : server.ClientStatsSnapshot()) {
    server_saw_nak |= c.naks_received >= 1 && c.resyncs_sent >= 1 &&
                      c.retransmit_segments >= 1;
  }
  EXPECT_TRUE(server_saw_nak)
      << "server never recorded the NAK / resync / retransmission";
  server.Stop();
}

TEST(NetTest, MidStreamDisconnectRecoversViaReconnect) {
  auto spec = TestSpec(test::TestSeed(17));
  log::Log log = workload::BuildSeededLog(spec);
  ASSERT_GT(log.NumSegments(), 6u);
  const std::uint64_t want = InProcessDigest(&log);

  net::ShipServer::Options options;
  options.drop_after_frames = 4;  // hard-close the first conn mid-stream
  net::ShipServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.PublishLog(log);
  server.FinishLog();

  net::SocketSegmentSource::Options so;
  so.port = server.port();
  so.backoff_initial = std::chrono::milliseconds(1);
  net::SocketSegmentSource source(std::move(so));
  EXPECT_EQ(ReplayDigest(&source), want)
      << "reconnect-resumed replay diverged from the in-process path";
  EXPECT_GE(source.stats().reconnects.load(), 1u);
  EXPECT_EQ(source.expected_seq(), server.end_seq());
  server.Stop();
}

TEST(NetTest, SubscribeFromMidStreamResumes) {
  auto spec = TestSpec(test::TestSeed(19));
  log::Log log = workload::BuildSeededLog(spec);
  ASSERT_GT(log.NumSegments(), 3u);

  net::ShipServer server;
  ASSERT_TRUE(server.Start().ok());
  server.PublishLog(log);
  server.FinishLog();

  // Resume from the 3rd segment's base: everything before it must not be
  // delivered (the restarted-backup path — it already applied that prefix).
  const std::uint64_t resume = log.segment(2)->base_seq();
  net::SocketSegmentSource::Options so;
  so.port = server.port();
  so.start_seq = resume;
  net::SocketSegmentSource source(std::move(so));
  std::uint64_t first_base = kMaxTimestamp;
  std::size_t delivered = 0;
  for (log::LogSegment* seg = source.Next(); seg != nullptr;
       seg = source.Next()) {
    first_base = std::min(first_base, seg->base_seq());
    ++delivered;
  }
  EXPECT_EQ(first_base, resume);
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(source.expected_seq(), server.end_seq());
  server.Stop();
}

TEST(NetTest, ConnectFailureGivesUpAfterMaxAttempts) {
  // A listener that never answers: bind an ephemeral port, then shut the
  // listener so connects are refused.
  net::TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  const std::uint16_t dead_port = listener.port();
  listener.Shutdown();

  net::SocketSegmentSource::Options so;
  so.port = dead_port;
  so.backoff_initial = std::chrono::milliseconds(1);
  so.backoff_max = std::chrono::milliseconds(2);
  so.max_connect_attempts = 3;
  net::SocketSegmentSource source(std::move(so));
  EXPECT_EQ(source.Next(), nullptr);
  EXPECT_FALSE(source.error().empty());
}

TEST(NetTest, ClusterViaSocketBackupMatchesInProcessBackup) {
  // One cluster, two backups: backup 0 on the in-process channel, backup 1
  // subscribed over real TCP. Same log, same protocol, two transports —
  // final states must be identical.
  ClusterOptions options;
  options.WithWorkers(2).WithSegmentRecords(64);
  options.AddBackup({.protocol = core::ProtocolKind::kC5});
  options.AddBackup({.protocol = core::ProtocolKind::kC5, .via_socket = true});
  Cluster cluster(options);
  const TableId t = cluster.CreateTable("kv");
  cluster.Start();
  ASSERT_NE(cluster.ship_server(), nullptr);
  ASSERT_NE(cluster.server_port(), 0u);

  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(cluster
                    .ExecuteWithRetry([&](txn::Txn& txn) {
                      return txn.Put(t, k % 97,
                                     workload::EncodeIntValue(k));
                    })
                    .ok());
  }
  cluster.StopPrimary();
  cluster.WaitForBackups();

  EXPECT_EQ(test::StateDigest(cluster.backup(1).db(), kMaxTimestamp),
            test::StateDigest(cluster.backup(0).db(), kMaxTimestamp))
      << "TCP-fed backup diverged from the channel-fed backup";

  bool served = false;
  for (const auto& c : cluster.ship_server()->ClientStatsSnapshot()) {
    served |= c.segments_sent > 0;
  }
  EXPECT_TRUE(served) << "ship server never streamed a segment";
  cluster.Shutdown();
}

TEST(NetTest, ShipProtocolCodecRoundTrips) {
  std::string bytes;
  net::EncodeRequest({net::RequestType::kNak, 0xDEADBEEFull}, &bytes);
  ASSERT_EQ(bytes.size(), net::kRequestBytes);
  net::Request req;
  bool malformed = true;
  ASSERT_TRUE(net::DecodeRequest(bytes, &req, &malformed));
  EXPECT_EQ(req.type, net::RequestType::kNak);
  EXPECT_EQ(req.arg, 0xDEADBEEFull);

  // Torn vs malformed are distinct verdicts.
  EXPECT_FALSE(net::DecodeRequest(
      std::string_view(bytes).substr(0, 5), &req, &malformed));
  EXPECT_FALSE(malformed);
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(net::DecodeRequest(bad, &req, &malformed));
  EXPECT_TRUE(malformed);

  std::string control;
  net::EncodeControl(net::kEndMagic, 424242, &control);
  ASSERT_EQ(control.size(), net::kControlBytes);
  std::uint64_t seq = 0;
  ASSERT_TRUE(net::DecodeControl(control, net::kEndMagic, &seq));
  EXPECT_EQ(seq, 424242u);
  // A corrupted seq fails the control CRC (resync scanning depends on it).
  std::string corrupt = control;
  corrupt[6] = static_cast<char>(corrupt[6] ^ 0x01);
  EXPECT_FALSE(net::DecodeControl(corrupt, net::kEndMagic, &seq));
}

}  // namespace
}  // namespace c5
