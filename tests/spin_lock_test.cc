#include "common/spin_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace c5 {
namespace {

TEST(SpinLockTest, BasicLockUnlock) {
  SpinLock lock;
  lock.lock();
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> g(lock);
        counter++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(TicketSpinLockTest, BasicLockUnlock) {
  TicketSpinLock lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TEST(TicketSpinLockTest, MutualExclusionUnderContention) {
  TicketSpinLock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<TicketSpinLock> g(lock);
        counter++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(TicketSpinLockTest, FifoOrderWithStaggeredArrival) {
  // Ticket locks grant in arrival order (the paper's §3.1 lock model).
  // Stagger arrivals so arrival order is deterministic, then verify the
  // critical-section order matches it.
  TicketSpinLock lock;
  std::vector<int> order;
  std::atomic<int> arrived{0};

  lock.lock();  // hold so all contenders queue up
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      int spins = 0;
      while (arrived.load() != t) SpinBackoff(spins);
      arrived.store(t + 1);
      lock.lock();  // ticket drawn here, in arrival order
      order.push_back(t);
      lock.unlock();
    });
    // Wait for thread t to have drawn its ticket: it sets arrived then
    // blocks in lock(); give it a moment to reach the ticket draw.
    int waits = 0;
    while (arrived.load() != t + 1) SpinBackoff(waits);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  lock.unlock();
  for (auto& t : threads) t.join();
  ASSERT_EQ(order.size(), 4u);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(order[t], t);
}

}  // namespace
}  // namespace c5
