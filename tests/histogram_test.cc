#include "common/histogram.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

#include "common/rng.h"

namespace c5 {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Summary(), "(empty)");
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // A single sample: every quantile falls in its bucket.
  const std::uint64_t q = h.Quantile(0.5);
  EXPECT_GE(q, 960u);
  EXPECT_LE(q, 1050u);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.Record(v);
  // Values below kSubBuckets are exact.
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.count(), 16u);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, QuantilesAreOrdered) {
  Histogram h;
  Rng rng(test::TestSeed(7));
  for (int i = 0; i < 10000; ++i) h.Record(rng.Uniform(1'000'000));
  const auto q25 = h.Quantile(0.25);
  const auto q50 = h.Quantile(0.50);
  const auto q75 = h.Quantile(0.75);
  const auto q99 = h.Quantile(0.99);
  EXPECT_LE(q25, q50);
  EXPECT_LE(q50, q75);
  EXPECT_LE(q75, q99);
  EXPECT_GE(q99, h.min());
  EXPECT_LE(q99, h.max());
}

TEST(HistogramTest, UniformQuantileAccuracy) {
  Histogram h;
  // Exact uniform sweep: quantiles should land within bucket resolution
  // (~6%) of the true value.
  for (std::uint64_t v = 0; v < 100000; ++v) h.Record(v);
  const double mid = static_cast<double>(h.Quantile(0.5));
  EXPECT_NEAR(mid, 50000.0, 50000.0 * 0.08);
  const double p90 = static_cast<double>(h.Quantile(0.9));
  EXPECT_NEAR(p90, 90000.0, 90000.0 * 0.08);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(1000);
  b.Record(5);
  b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 100000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(~std::uint64_t{0});
  h.Record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_GE(h.Quantile(1.0), 1ull << 62);
}

TEST(FormatNanosTest, UnitSelection) {
  EXPECT_EQ(FormatNanos(500), "500ns");
  EXPECT_EQ(FormatNanos(1500), "1.5us");
  EXPECT_EQ(FormatNanos(2'500'000), "2.5ms");
  EXPECT_EQ(FormatNanos(3'000'000'000ull), "3.00s");
}

TEST(HistogramTest, QuantileZeroAndOne) {
  Histogram h;
  for (std::uint64_t v = 100; v <= 200; ++v) h.Record(v);
  EXPECT_LE(h.Quantile(0.0), 110u);
  EXPECT_GE(h.Quantile(1.0), 190u);
}

}  // namespace
}  // namespace c5
