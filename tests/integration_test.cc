// End-to-end pipelines: live primary -> online log shipping -> replica with
// concurrent read-only clients, lag measurement, and garbage collection. The
// closest test analogue of the paper's Fig. 8/9 setup.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/protocol_factory.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "replica/lag_tracker.h"
#include "tests/test_util.h"
#include "txn/mvtso_engine.h"
#include "txn/two_phase_locking_engine.h"
#include "workload/runner.h"
#include "workload/synthetic.h"
#include "workload/tpcc.h"

namespace c5 {
namespace {

using core::MakeReplica;
using core::ProtocolKind;
using core::ProtocolOptions;

class OnlineReplicationTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(OnlineReplicationTest, LivePrimaryStreamsToReplicaWithReaders) {
  storage::Database primary_db, backup_db;
  const TableId table = workload::SyntheticWorkload::CreateTable(&primary_db);
  workload::SyntheticWorkload::CreateTable(&backup_db);

  TxnClock clock;
  log::OnlineLogCollector collector(/*segment_records=*/64);
  txn::MvtsoEngine engine(&primary_db, &collector, &clock);
  collector.SetReleaseHorizon([&engine] { return engine.LogHorizon(); });

  workload::SyntheticWorkload wl(table, {.inserts_per_txn = 3,
                                         .adversarial = true});
  ASSERT_TRUE(wl.LoadHotRow(engine).ok());
  collector.Flush();

  replica::LagTracker lag(/*sample_every=*/4);
  log::ChannelSegmentSource source(&collector.channel());
  auto rep = MakeReplica(GetParam(), &backup_db,
                         ProtocolOptions{.num_workers = 2,
                                         .snapshot_interval =
                                             std::chrono::microseconds(100)},
                         &lag);
  rep->Start(&source);
  auto* base = dynamic_cast<replica::ReplicaBase*>(rep.get());
  ASSERT_NE(base, nullptr);

  // Read-only clients hammering the backup during replication.
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> reads{0};
  const std::uint64_t reader_seed = test::TestSeed(5);  // main thread only
  std::thread reader([&] {
    Rng rng(reader_seed);
    while (!stop_readers.load()) {
      Value v;
      (void)base->ReadAtVisible(table, workload::SyntheticWorkload::kHotKey,
                                &v);
      reads.fetch_add(1);
    }
  });

  // A flusher so partial segments ship promptly.
  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    while (!stop_flusher.load()) {
      collector.Flush();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Live write load. Commit timestamps are captured inside the transaction
  // body (the MVTSO timestamp IS the commit timestamp on success).
  std::vector<std::uint64_t> seqs(4, 0);
  std::atomic<Timestamp> last_ts{0};
  const auto result = workload::RunClosedLoop(
      4, std::chrono::milliseconds(300), 0,
      [&](std::uint32_t client, Rng& rng) {
        Timestamp my_ts = 0;
        const std::uint64_t base = seqs[client];
        const Status s = engine.ExecuteWithRetry([&](txn::Txn& txn) {
          my_ts = txn.timestamp();
          for (std::uint32_t i = 0; i < 3; ++i) {
            const Key k = (std::uint64_t{1} << 63) |
                          (static_cast<std::uint64_t>(client) << 40) |
                          (base + i);
            const Status st =
                txn.Insert(table, k, workload::EncodeIntValue(base + i));
            if (!st.ok()) return st;
          }
          return txn.Update(table, workload::SyntheticWorkload::kHotKey,
                            workload::EncodeIntValue(rng.Next()));
        });
        if (s.ok()) {
          seqs[client] = base + 3;
          lag.RecordCommit(my_ts);
          last_ts.store(my_ts, std::memory_order_relaxed);
        }
        return s;
      },
      test::TestSeed(1));
  EXPECT_GT(result.committed, 100u);

  stop_flusher.store(true);
  flusher.join();
  collector.Finish();
  rep->WaitUntilCaughtUp();
  stop_readers.store(true);
  reader.join();
  rep->Stop();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(test::StateDigest(primary_db, kMaxTimestamp),
            test::StateDigest(backup_db, kMaxTimestamp));

  // Lag histogram was populated and is sane (everything eventually visible).
  EXPECT_EQ(lag.PendingCount(), 0u);
  const Histogram h = lag.TakeHistogram();
  EXPECT_GT(h.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, OnlineReplicationTest,
    ::testing::Values(ProtocolKind::kC5, ProtocolKind::kC5MyRocks,
                      ProtocolKind::kKuaFu, ProtocolKind::kSingleThread,
                      ProtocolKind::kC5Queue),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = core::ToString(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(OnlineTpccTest, TwoPhaseLockingPrimaryStreamsTpccToC5) {
  storage::Database primary_db, backup_db;
  workload::tpcc::CreateTables(&primary_db);
  workload::tpcc::CreateTables(&backup_db);

  TxnClock clock;
  log::OnlineLogCollector collector(/*segment_records=*/128);
  txn::TwoPhaseLockingEngine engine(&primary_db, &collector, &clock);

  workload::tpcc::TpccConfig cfg;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 20;
  cfg.items = 100;
  workload::tpcc::Load(engine, cfg);

  log::ChannelSegmentSource source(&collector.channel());
  auto rep = MakeReplica(ProtocolKind::kC5, &backup_db,
                         ProtocolOptions{.num_workers = 2});
  rep->Start(&source);

  const auto result = workload::RunClosedLoop(
      4, std::chrono::milliseconds(0), 30,
      [&](std::uint32_t client, Rng& rng) {
        (void)client;
        return rng.Uniform(2) == 0
                   ? workload::tpcc::RunNewOrder(engine, rng, cfg, 1)
                   : workload::tpcc::RunPayment(engine, rng, cfg, 1);
      },
      test::TestSeed(1));
  EXPECT_GT(result.committed, 0u);
  collector.Finish();
  rep->WaitUntilCaughtUp();
  rep->Stop();

  EXPECT_EQ(test::StateDigest(primary_db, kMaxTimestamp),
            test::StateDigest(backup_db, kMaxTimestamp));
  for (std::uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
    EXPECT_TRUE(workload::tpcc::CheckDistrictOrderInvariant(
        backup_db, cfg, 1, d, rep->VisibleTimestamp()));
  }
}

TEST(GcIntegrationTest, PrimaryGcDuringHotWorkload) {
  storage::Database db;
  const TableId table = workload::SyntheticWorkload::CreateTable(&db);
  TxnClock clock;
  txn::MvtsoEngine engine(&db, nullptr, &clock);
  workload::SyntheticWorkload wl(table, {.inserts_per_txn = 1,
                                         .adversarial = true});
  ASSERT_TRUE(wl.LoadHotRow(engine).ok());

  std::atomic<bool> stop{false};
  std::thread gc([&] {
    while (!stop.load()) {
      db.CollectGarbage(engine.GcHorizon());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::uint64_t> seqs(4, 0);
  const auto result = workload::RunClosedLoop(
      4, std::chrono::milliseconds(300), 0,
      [&](std::uint32_t client, Rng& rng) {
        return wl.RunTxn(engine, rng, client, &seqs[client]);
      },
      test::TestSeed(1));
  stop.store(true);
  gc.join();
  EXPECT_GT(result.committed, 100u);

  // Final GC pass: hot chain collapses to a handful of versions.
  db.CollectGarbage(engine.GcHorizon());
  db.epochs().ReclaimSome();
  const auto guard = db.epochs().Enter();
  const RowId hot = *db.index(table).Lookup(0);
  std::size_t chain = 0;
  for (const storage::Version* v = db.table(table).ReadLatestCommitted(hot);
       v != nullptr; v = v->Next()) {
    ++chain;
  }
  EXPECT_LT(chain, 100u);
}

TEST(ReplicaComparisonTest, AllProtocolsProduceIdenticalBackups) {
  auto run = test::RunSyntheticPrimary(true, 4, 300);
  std::uint64_t reference = 0;
  bool first = true;
  for (const auto kind :
       {ProtocolKind::kC5, ProtocolKind::kC5MyRocks, ProtocolKind::kC5Queue,
        ProtocolKind::kPageGranularity, ProtocolKind::kTableGranularity,
        ProtocolKind::kKuaFu, ProtocolKind::kSingleThread}) {
    storage::Database backup;
    workload::SyntheticWorkload::CreateTable(&backup);
    run.log.ResetReplayState();
    log::OfflineSegmentSource source(&run.log);
    auto rep = MakeReplica(kind, &backup, ProtocolOptions{.num_workers = 3});
    rep->Start(&source);
    rep->WaitUntilCaughtUp();
    rep->Stop();
    const std::uint64_t digest = test::StateDigest(backup, kMaxTimestamp);
    if (first) {
      reference = digest;
      first = false;
    } else {
      EXPECT_EQ(digest, reference) << core::ToString(kind);
    }
  }
  EXPECT_EQ(reference, test::StateDigest(run.primary->db, kMaxTimestamp));
}

}  // namespace
}  // namespace c5
