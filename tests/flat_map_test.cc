// FlatMap coverage, mirroring hash_index_test.cc where the operations
// overlap (no erase: the scheduler never removes entries).

#include "common/flat_map.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

#include <unordered_map>

#include "common/rng.h"
#include "common/types.h"

namespace c5 {
namespace {

TEST(FlatMapTest, InsertAndFind) {
  FlatMap<Timestamp> map;
  map[42] = 7;
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 7u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, FindMissingReturnsNull) {
  FlatMap<Timestamp> map;
  EXPECT_EQ(map.Find(99), nullptr);
}

TEST(FlatMapTest, OperatorIndexDefaultConstructsOnce) {
  FlatMap<Timestamp> map;
  EXPECT_EQ(map[5], 0u);  // first touch: default value
  map[5] = 77;
  EXPECT_EQ(map[5], 77u);  // second touch: same slot
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, KeyZeroIsUsable) {
  // Key 0 collides with the internal empty encoding if mishandled.
  FlatMap<Timestamp> map;
  map[0] = 100;
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 100u);
}

TEST(FlatMapTest, LargeKeysAreUsable) {
  FlatMap<Timestamp> map;
  const std::uint64_t k = ~std::uint64_t{0} - 1;  // max supported key
  map[k] = 5;
  EXPECT_EQ(*map.Find(k), 5u);
  // The reserved key (~0) is never stored; Find must not alias it onto the
  // empty-slot encoding.
  EXPECT_EQ(map.Find(~std::uint64_t{0}), nullptr);
}

TEST(FlatMapTest, ExistingKeyAccessNeverRehashes) {
  // operator[] on a present key is a pure lookup: references stay valid even
  // when the map sits exactly at the load-factor boundary.
  FlatMap<Timestamp> map(8);
  map[1] = 11;
  Timestamp* ref = &map[1];
  const std::size_t cap = map.capacity();
  // Fill right up to (but not past) the grow trigger.
  for (std::uint64_t k = 2; (map.size() + 1) * 4 < map.capacity() * 3; ++k) {
    map[k] = k;
  }
  ASSERT_EQ(map.capacity(), cap);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(&map[1], ref);  // would rehash under the old grow-first order
  }
  EXPECT_EQ(*ref, 11u);
}

TEST(FlatMapTest, GrowPreservesEntries) {
  FlatMap<Timestamp> map(8);
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t k = 0; k < kN; ++k) map[k] = k * 2;
  EXPECT_EQ(map.size(), kN);
  EXPECT_GE(map.capacity(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
    ASSERT_EQ(*map.Find(k), k * 2);
  }
}

TEST(FlatMapTest, PreSizedMapDoesNotRehash) {
  FlatMap<Timestamp> map(1 << 12);
  const std::size_t cap = map.capacity();
  for (std::uint64_t k = 0; k < 3000; ++k) map[k] = k;  // 3000 < 75% of 4096
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMapTest, SchedulerRowNameKeysCluster) {
  // The scheduler's keys are (table << 56 | row) with dense row ids —
  // worst-case clustering for a weak hash. The finalizer must spread them.
  FlatMap<Timestamp> map(8);
  for (std::uint64_t table = 0; table < 4; ++table) {
    for (std::uint64_t row = 0; row < 5000; ++row) {
      map[(table << 56) | row] = table + row + 1;
    }
  }
  EXPECT_EQ(map.size(), 20000u);
  for (std::uint64_t table = 0; table < 4; ++table) {
    for (std::uint64_t row = 0; row < 5000; ++row) {
      ASSERT_EQ(*map.Find((table << 56) | row), table + row + 1);
    }
  }
}

TEST(FlatMapTest, MatchesReferenceMapUnderRandomOps) {
  FlatMap<Timestamp> map(16);
  std::unordered_map<std::uint64_t, Timestamp> ref;
  Rng rng(test::TestSeed(77));
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t k = rng.Uniform(2000);
    if (rng.Uniform(2) == 0) {
      map[k] = static_cast<Timestamp>(i);
      ref[k] = static_cast<Timestamp>(i);
    } else {
      const Timestamp* got = map.Find(k);
      const auto it = ref.find(k);
      ASSERT_EQ(got != nullptr, it != ref.end());
      if (got != nullptr) {
        ASSERT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(map.size(), ref.size());
}

}  // namespace
}  // namespace c5
