#include "workload/tpcc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "core/protocol_factory.h"
#include "log/log_collector.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/runner.h"

namespace c5::workload::tpcc {
namespace {

TpccConfig SmallConfig() {
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 50;
  cfg.items = 200;
  return cfg;
}

class TpccTest : public ::testing::Test {
 protected:
  TpccTest() : engine_(&db_, &collector_, &clock_) {
    CreateTables(&db_);
    cfg_ = SmallConfig();
    loaded_ = Load(engine_, cfg_);
  }

  log::Log run_log() { return collector_.Coalesce(); }

  storage::Database db_;
  TxnClock clock_;
  log::PerThreadLogCollector collector_;
  txn::MvtsoEngine engine_;
  TpccConfig cfg_;
  std::uint64_t loaded_ = 0;
};

TEST_F(TpccTest, LoadPopulatesExpectedRowCounts) {
  const std::uint64_t expected =
      1                                     // warehouse
      + cfg_.districts_per_warehouse       // districts
      + cfg_.districts_per_warehouse * cfg_.customers_per_district
      + cfg_.items                          // items
      + cfg_.items;                         // stock
  EXPECT_EQ(loaded_, expected);
  EXPECT_EQ(db_.index(kWarehouse).Size(), 1u);
  EXPECT_EQ(db_.index(kDistrict).Size(), cfg_.districts_per_warehouse);
  EXPECT_EQ(db_.index(kItem).Size(), cfg_.items);
  EXPECT_EQ(db_.index(kStock).Size(), cfg_.items);
}

TEST_F(TpccTest, LoadedRowsRoundTrip) {
  const auto guard = db_.epochs().Enter();
  const auto* v = db_.ReadKeyAt(kDistrict, DistrictKey(1, 1), kMaxTimestamp);
  ASSERT_NE(v, nullptr);
  const DistrictRow dr = FromValue<DistrictRow>(v->value());
  EXPECT_EQ(dr.d_id, 1u);
  EXPECT_EQ(dr.d_w_id, 1u);
  EXPECT_EQ(dr.d_next_o_id, 1u);
}

TEST_F(TpccTest, NewOrderCommitsAndAllocatesOrderId) {
  Rng rng(test::TestSeed(1));
  std::uint64_t committed = 0;
  for (int i = 0; i < 50; ++i) {
    const Status s = RunNewOrder(engine_, rng, cfg_, 1);
    if (s.ok()) ++committed;
    else EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
  }
  EXPECT_GT(committed, 30u);

  // Sum of (d_next_o_id - 1) over districts == committed NewOrders.
  const auto guard = db_.epochs().Enter();
  std::uint64_t total_orders = 0;
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    const auto* v = db_.ReadKeyAt(kDistrict, DistrictKey(1, d), kMaxTimestamp);
    ASSERT_NE(v, nullptr);
    total_orders += FromValue<DistrictRow>(v->value()).d_next_o_id - 1;
  }
  EXPECT_EQ(total_orders, committed);
  EXPECT_EQ(db_.index(kOrder).Size(), committed);
  EXPECT_EQ(db_.index(kNewOrder).Size(), committed);
}

TEST_F(TpccTest, NewOrderUpdatesStock) {
  // Force a deterministic single order and verify stock changes.
  Rng rng(test::TestSeed(2));
  std::uint64_t ytd_before = 0, ytd_after = 0;
  {
    const auto guard = db_.epochs().Enter();
    for (std::uint32_t i = 1; i <= cfg_.items; ++i) {
      const auto* v = db_.ReadKeyAt(kStock, StockKey(1, i), kMaxTimestamp);
      ytd_before += static_cast<std::uint64_t>(
          FromValue<StockRow>(v->value()).s_ytd);
    }
  }
  Status s;
  do {
    s = RunNewOrder(engine_, rng, cfg_, 1);
  } while (s.code() == StatusCode::kCancelled);
  ASSERT_TRUE(s.ok());
  {
    const auto guard = db_.epochs().Enter();
    for (std::uint32_t i = 1; i <= cfg_.items; ++i) {
      const auto* v = db_.ReadKeyAt(kStock, StockKey(1, i), kMaxTimestamp);
      ytd_after += static_cast<std::uint64_t>(
          FromValue<StockRow>(v->value()).s_ytd);
    }
  }
  // Ordered quantities (5..15 items x 1..10 each) land in stock ytd.
  EXPECT_GT(ytd_after, ytd_before);
  EXPECT_LE(ytd_after - ytd_before, 150u);
}

TEST_F(TpccTest, PaymentUpdatesBalancesConsistently) {
  Rng rng(test::TestSeed(3));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(RunPayment(engine_, rng, cfg_, 1).ok());
  }
  // Money conservation: warehouse ytd increase == district ytd increases
  // == customer ytd_payment increases == history amounts.
  const auto guard = db_.epochs().Enter();
  const auto* wv = db_.ReadKeyAt(kWarehouse, WarehouseKey(1), kMaxTimestamp);
  const double w_delta = FromValue<WarehouseRow>(wv->value()).w_ytd - 300000.0;

  double d_delta = 0;
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    const auto* dv = db_.ReadKeyAt(kDistrict, DistrictKey(1, d), kMaxTimestamp);
    d_delta += FromValue<DistrictRow>(dv->value()).d_ytd - 30000.0;
  }
  EXPECT_NEAR(w_delta, d_delta, 1e-6);
  EXPECT_GT(w_delta, 0);
  EXPECT_EQ(db_.index(kHistory).Size(), 50u);
}

TEST_F(TpccTest, OptimizedVariantsPreserveSemantics) {
  // The §6.1 op reordering must not change the effects, only the op order.
  cfg_.optimized = true;
  Rng rng(test::TestSeed(4));
  std::uint64_t committed = 0;
  for (int i = 0; i < 30; ++i) {
    const Status s = RunNewOrder(engine_, rng, cfg_, 1);
    if (s.ok()) ++committed;
  }
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(RunPayment(engine_, rng, cfg_, 1).ok());

  const auto guard = db_.epochs().Enter();
  std::uint64_t total_orders = 0;
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    const auto* v = db_.ReadKeyAt(kDistrict, DistrictKey(1, d), kMaxTimestamp);
    total_orders += FromValue<DistrictRow>(v->value()).d_next_o_id - 1;
  }
  EXPECT_EQ(total_orders, committed);
  EXPECT_TRUE(CheckDistrictOrderInvariant(db_, cfg_, 1, 1, kMaxTimestamp));
}

TEST_F(TpccTest, ConcurrentNewOrdersNeverSkipOrLoseOrderIds) {
  RunClosedLoop(4, std::chrono::milliseconds(0), 50,
                [this](std::uint32_t client, Rng& rng) {
                  (void)client;
                  return RunNewOrder(engine_, rng, cfg_, 1);
                },
                test::TestSeed(1));
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    EXPECT_TRUE(CheckDistrictOrderInvariant(db_, cfg_, 1, d, kMaxTimestamp))
        << "district " << d;
  }
}

TEST_F(TpccTest, MixReplicatesAndInvariantHoldsAtBackupSnapshots) {
  // Run a 50/50 mix, replicate through C5, and check the district/order
  // invariant both at the final backup state and at the visible snapshot.
  RunClosedLoop(4, std::chrono::milliseconds(0), 40,
                [this](std::uint32_t client, Rng& rng) {
                  (void)client;
                  return rng.Uniform(2) == 0
                             ? RunNewOrder(engine_, rng, cfg_, 1)
                             : RunPayment(engine_, rng, cfg_, 1);
                },
                test::TestSeed(1));
  log::Log log = run_log();
  ASSERT_TRUE(test::LogIsWellFormed(log));

  storage::Database backup;
  CreateTables(&backup);
  log::OfflineSegmentSource source(&log);
  auto replica = core::MakeReplica(core::ProtocolKind::kC5, &backup,
                                   core::ProtocolOptions{.num_workers = 4});
  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  replica->Stop();

  EXPECT_EQ(test::StateDigest(db_, kMaxTimestamp),
            test::StateDigest(backup, kMaxTimestamp));
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    EXPECT_TRUE(CheckDistrictOrderInvariant(backup, cfg_, 1, d,
                                            replica->VisibleTimestamp()));
  }
}

TEST_F(TpccTest, TwoPhaseLockingRunsTheSameWorkload) {
  storage::Database db2;
  TxnClock clock2;
  log::PerThreadLogCollector collector2;
  txn::TwoPhaseLockingEngine eng(&db2, &collector2, &clock2);
  CreateTables(&db2);
  Load(eng, cfg_);
  RunClosedLoop(4, std::chrono::milliseconds(0), 30,
                [&](std::uint32_t client, Rng& rng) {
                  (void)client;
                  return rng.Uniform(2) == 0 ? RunNewOrder(eng, rng, cfg_, 1)
                                             : RunPayment(eng, rng, cfg_, 1);
                },
                test::TestSeed(1));
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    EXPECT_TRUE(CheckDistrictOrderInvariant(db2, cfg_, 1, d, kMaxTimestamp))
        << "district " << d;
  }
}

TEST(TpccKeysTest, KeyEncodingsAreInjectivePerTable) {
  // Keys only need to be unique within their own table (each table has its
  // own index). Check each encoding separately over realistic ranges.
  std::set<Key> warehouses, districts, customers, orders, order_lines;
  for (std::uint32_t w = 1; w <= 3; ++w) {
    ASSERT_TRUE(warehouses.insert(WarehouseKey(w)).second);
    for (std::uint32_t d = 1; d <= 10; ++d) {
      ASSERT_TRUE(districts.insert(DistrictKey(w, d)).second);
      for (std::uint32_t c = 1; c <= 20; ++c) {
        ASSERT_TRUE(customers.insert(CustomerKey(w, d, c)).second);
      }
      for (std::uint32_t o = 1; o <= 20; ++o) {
        ASSERT_TRUE(orders.insert(OrderKey(w, d, o)).second);
        for (std::uint32_t ol = 1; ol <= 15; ++ol) {
          ASSERT_TRUE(order_lines.insert(OrderLineKey(w, d, o, ol)).second);
        }
      }
    }
  }
}

TEST(TpccSchemaTest, RowsRoundTripThroughValues) {
  DistrictRow dr{};
  dr.d_id = 7;
  dr.d_w_id = 3;
  dr.d_next_o_id = 42;
  dr.d_tax = 0.0625;
  const Value v = ToValue(dr);
  EXPECT_EQ(v.size(), sizeof(DistrictRow));
  const DistrictRow back = FromValue<DistrictRow>(v);
  EXPECT_EQ(back.d_id, 7u);
  EXPECT_EQ(back.d_w_id, 3u);
  EXPECT_EQ(back.d_next_o_id, 42u);
  EXPECT_DOUBLE_EQ(back.d_tax, 0.0625);
}

}  // namespace
}  // namespace c5::workload::tpcc

namespace c5::workload::tpcc {
namespace {

class TpccFullMixTest : public ::testing::Test {
 protected:
  TpccFullMixTest() : engine_(&db_, &collector_, &clock_) {
    CreateTables(&db_);
    cfg_ = SmallConfig();
    Load(engine_, cfg_);
  }

  storage::Database db_;
  TxnClock clock_;
  log::PerThreadLogCollector collector_;
  txn::MvtsoEngine engine_;
  TpccConfig cfg_;
};

TEST_F(TpccFullMixTest, DeliveryConsumesOldestOrders) {
  Rng rng(test::TestSeed(11));
  std::uint64_t orders = 0;
  for (int i = 0; i < 30; ++i) {
    if (RunNewOrder(engine_, rng, cfg_, 1).ok()) ++orders;
  }
  std::uint32_t total_delivered = 0;
  for (int i = 0; i < 50; ++i) {
    std::uint32_t delivered = 0;
    ASSERT_TRUE(RunDelivery(engine_, rng, cfg_, 1, &delivered).ok());
    total_delivered += delivered;
    if (delivered == 0) break;
  }
  EXPECT_EQ(total_delivered, orders);
  // All NEW_ORDER rows consumed; ORDER rows remain with carriers stamped.
  const auto guard = db_.epochs().Enter();
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    const auto* dv = db_.ReadKeyAt(kDistrict, DistrictKey(1, d), kMaxTimestamp);
    const DistrictRow dr = FromValue<DistrictRow>(dv->value());
    EXPECT_EQ(dr.d_last_delivered + 1, dr.d_next_o_id);
    for (std::uint32_t o = 1; o < dr.d_next_o_id; ++o) {
      const auto* nv = db_.ReadKeyAt(kNewOrder, NewOrderKey(1, d, o),
                                     kMaxTimestamp);
      EXPECT_TRUE(nv == nullptr || nv->deleted);
      const auto* ov = db_.ReadKeyAt(kOrder, OrderKey(1, d, o), kMaxTimestamp);
      ASSERT_NE(ov, nullptr);
      EXPECT_GT(FromValue<OrderRow>(ov->value()).o_carrier_id, 0u);
    }
  }
}

TEST_F(TpccFullMixTest, DeliveryOnEmptyWarehouseDeliversNothing) {
  Rng rng(test::TestSeed(12));
  std::uint32_t delivered = 99;
  ASSERT_TRUE(RunDelivery(engine_, rng, cfg_, 1, &delivered).ok());
  EXPECT_EQ(delivered, 0u);
}

TEST_F(TpccFullMixTest, OrderStatusAndStockLevelRun) {
  Rng rng(test::TestSeed(13));
  for (int i = 0; i < 20; ++i) (void)RunNewOrder(engine_, rng, cfg_, 1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(RunOrderStatus(engine_, rng, cfg_, 1).ok());
    std::uint32_t low = 0;
    ASSERT_TRUE(RunStockLevel(engine_, rng, cfg_, 1, &low).ok());
    EXPECT_LE(low, 20u * 15u);
  }
}

TEST_F(TpccFullMixTest, FullFiveTransactionMixPreservesInvariants) {
  RunClosedLoop(4, std::chrono::milliseconds(0), 60,
                [this](std::uint32_t client, Rng& rng) {
                  (void)client;
                  const auto roll = rng.Uniform(100);
                  if (roll < 45) return RunNewOrder(engine_, rng, cfg_, 1);
                  if (roll < 88) return RunPayment(engine_, rng, cfg_, 1);
                  if (roll < 92) {
                    std::uint32_t d = 0;
                    return RunDelivery(engine_, rng, cfg_, 1, &d);
                  }
                  if (roll < 96) return RunOrderStatus(engine_, rng, cfg_, 1);
                  std::uint32_t low = 0;
                  return RunStockLevel(engine_, rng, cfg_, 1, &low);
                },
                test::TestSeed(1));
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    EXPECT_TRUE(CheckDistrictOrderInvariant(db_, cfg_, 1, d, kMaxTimestamp))
        << "district " << d;
  }
}

TEST_F(TpccFullMixTest, FullMixReplicatesAndStockLevelRunsOnBackup) {
  Rng rng(test::TestSeed(14));
  RunClosedLoop(4, std::chrono::milliseconds(0), 40,
                [this](std::uint32_t client, Rng& rng2) {
                  (void)client;
                  const auto roll = rng2.Uniform(100);
                  if (roll < 50) return RunNewOrder(engine_, rng2, cfg_, 1);
                  if (roll < 90) return RunPayment(engine_, rng2, cfg_, 1);
                  std::uint32_t d = 0;
                  return RunDelivery(engine_, rng2, cfg_, 1, &d);
                },
                test::TestSeed(1));
  log::Log log = collector_.Coalesce();
  storage::Database backup;
  CreateTables(&backup);
  log::OfflineSegmentSource source(&log);
  auto replica = core::MakeReplica(core::ProtocolKind::kC5, &backup,
                                   core::ProtocolOptions{.num_workers = 4});
  replica->Start(&source);
  replica->WaitUntilCaughtUp();

  // The paper's read path: read-only analytics on the backup's snapshot.
  auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get());
  ASSERT_NE(base, nullptr);
  for (int i = 0; i < 10; ++i) {
    std::uint32_t low = 0;
    EXPECT_TRUE(RunStockLevelOnBackup(*base, rng, cfg_, 1, &low).ok());
  }
  replica->Stop();
  EXPECT_EQ(test::StateDigest(db_, kMaxTimestamp),
            test::StateDigest(backup, kMaxTimestamp));
}

// ---- Analytical scenario battery (HTAP, PR 10) -----------------------------
// The ordered-index read surface on a backup: whole-warehouse stock
// aggregation and district order-line range scans, checked against oracles
// computed by point reads on the primary.

TEST_F(TpccFullMixTest, AnalyticalQueriesOnBackupMatchPrimaryOracle) {
  RunClosedLoop(4, std::chrono::milliseconds(0), 40,
                [this](std::uint32_t client, Rng& rng) {
                  (void)client;
                  const auto roll = rng.Uniform(100);
                  if (roll < 60) return RunNewOrder(engine_, rng, cfg_, 1);
                  if (roll < 95) return RunPayment(engine_, rng, cfg_, 1);
                  std::uint32_t d = 0;
                  return RunDelivery(engine_, rng, cfg_, 1, &d);
                },
                test::TestSeed(21));
  log::Log log = collector_.Coalesce();
  storage::Database backup;
  CreateTables(&backup);
  log::OfflineSegmentSource source(&log);
  auto replica = core::MakeReplica(core::ProtocolKind::kC5, &backup,
                                   core::ProtocolOptions{.num_workers = 4});
  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get());
  ASSERT_NE(base, nullptr);

  // Whole-warehouse low-stock count vs a point-read fold on the primary.
  for (const std::uint32_t threshold : {0u, 12u, 1000000u}) {
    std::uint64_t want = 0;
    {
      const auto guard = db_.epochs().Enter();
      for (std::uint32_t i = 1; i <= cfg_.items; ++i) {
        const auto* v = db_.ReadKeyAt(kStock, StockKey(1, i), kMaxTimestamp);
        ASSERT_NE(v, nullptr);
        if (FromValue<StockRow>(v->value()).s_quantity < threshold) ++want;
      }
    }
    std::uint64_t got = 0;
    ASSERT_TRUE(CountLowStockOnBackup(*base, 1, threshold, &got).ok());
    EXPECT_EQ(got, want) << "threshold " << threshold;
  }

  // District order-line volume vs an order-walk oracle on the primary.
  for (std::uint32_t d = 1; d <= cfg_.districts_per_warehouse; ++d) {
    std::uint64_t want_lines = 0, want_qty = 0;
    {
      const auto guard = db_.epochs().Enter();
      const auto* dv =
          db_.ReadKeyAt(kDistrict, DistrictKey(1, d), kMaxTimestamp);
      ASSERT_NE(dv, nullptr);
      const DistrictRow dr = FromValue<DistrictRow>(dv->value());
      for (std::uint32_t o = 1; o < dr.d_next_o_id; ++o) {
        const auto* ov = db_.ReadKeyAt(kOrder, OrderKey(1, d, o),
                                       kMaxTimestamp);
        ASSERT_NE(ov, nullptr);
        const OrderRow orow = FromValue<OrderRow>(ov->value());
        for (std::uint32_t ol = 1; ol <= orow.o_ol_cnt; ++ol) {
          const auto* lv = db_.ReadKeyAt(kOrderLine,
                                         OrderLineKey(1, d, o, ol),
                                         kMaxTimestamp);
          ASSERT_NE(lv, nullptr);
          ++want_lines;
          want_qty += FromValue<OrderLineRow>(lv->value()).ol_quantity;
        }
      }
    }
    std::uint64_t lines = 0, qty = 0;
    ASSERT_TRUE(
        DistrictOrderLineVolumeOnBackup(*base, 1, d, &lines, &qty).ok());
    EXPECT_EQ(lines, want_lines) << "district " << d;
    EXPECT_EQ(qty, want_qty) << "district " << d;
  }
  replica->Stop();
}

// Live HTAP: analytical queries run on the backup WHILE the primary commits
// and replay streams. Monotonic-prefix consistency makes the per-district
// line count non-decreasing across successive snapshots; after the writer
// stops and the backup drains, the analytics converge to the primary's
// final state.
TEST(TpccAnalyticalLiveTest, AnalyticsStayConsistentWhileReplayStreams) {
  const TpccConfig cfg = SmallConfig();
  storage::Database primary_db, backup_db;
  CreateTables(&primary_db);
  CreateTables(&backup_db);
  TxnClock clock;
  log::OnlineLogCollector collector(/*segment_records=*/256);
  txn::TwoPhaseLockingEngine engine(&primary_db, &collector, &clock);
  collector.SetReleaseHorizon([&engine] { return engine.LogHorizon(); });
  Load(engine, cfg);

  log::ChannelSegmentSource source(&collector.channel());
  core::ProtocolOptions options;
  options.num_workers = 2;
  options.snapshot_interval = std::chrono::microseconds(100);
  auto replica =
      core::MakeReplica(core::ProtocolKind::kC5, &backup_db, options);
  replica->Start(&source);
  auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get());
  ASSERT_NE(base, nullptr);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng rng(test::TestSeed(22));
    for (int i = 0; i < 300; ++i) {
      (void)RunNewOrder(engine, rng, cfg, 1);
      collector.Flush();
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t last_lines = 0;
  std::uint64_t probes = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::uint64_t lines = 0, qty = 0;
    ASSERT_TRUE(
        DistrictOrderLineVolumeOnBackup(*base, 1, 1, &lines, &qty).ok());
    EXPECT_GE(lines, last_lines)
        << "order-line count went backwards across snapshots";
    last_lines = lines;
    std::uint64_t low = 0;
    ASSERT_TRUE(CountLowStockOnBackup(*base, 1, 1000000u, &low).ok());
    EXPECT_LE(low, cfg.items) << "aggregate saw more stock rows than exist";
    ++probes;
  }
  writer.join();
  EXPECT_GT(probes, 0u);

  // Drain, then the analytics must agree with the primary exactly.
  collector.Flush();
  const Timestamp target = clock.Latest();
  while (replica->VisibleTimestamp() < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  std::uint64_t want_lines = 0;
  {
    const auto guard = primary_db.epochs().Enter();
    const auto* dv =
        primary_db.ReadKeyAt(kDistrict, DistrictKey(1, 1), kMaxTimestamp);
    ASSERT_NE(dv, nullptr);
    const DistrictRow dr = FromValue<DistrictRow>(dv->value());
    for (std::uint32_t o = 1; o < dr.d_next_o_id; ++o) {
      const auto* ov =
          primary_db.ReadKeyAt(kOrder, OrderKey(1, 1, o), kMaxTimestamp);
      ASSERT_NE(ov, nullptr);
      want_lines += FromValue<OrderRow>(ov->value()).o_ol_cnt;
    }
  }
  std::uint64_t lines = 0, qty = 0;
  ASSERT_TRUE(
      DistrictOrderLineVolumeOnBackup(*base, 1, 1, &lines, &qty).ok());
  EXPECT_EQ(lines, want_lines);
  EXPECT_GE(lines, last_lines);

  collector.Finish();
  replica->WaitUntilCaughtUp();
  replica->Stop();
}

}  // namespace
}  // namespace c5::workload::tpcc
