// Parameterized correctness suite run against EVERY cloned concurrency
// control protocol in the repository: state convergence, per-row ordering,
// visibility (monotonic prefix consistency), and read-only transaction
// behaviour, on low- and high-contention logs from both primary engines.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/snapshot.h"
#include "core/protocol_factory.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

using core::MakeReplica;
using core::ProtocolKind;
using core::ProtocolOptions;

// kKuaFuUnconstrained is excluded: it is a diagnostic mode that
// intentionally breaks correctness (§7.3).
const ProtocolKind kAllCorrectProtocols[] = {
    ProtocolKind::kC5,           ProtocolKind::kC5MyRocks,
    ProtocolKind::kC5Queue,      ProtocolKind::kPageGranularity,
    ProtocolKind::kTableGranularity, ProtocolKind::kKuaFu,
    ProtocolKind::kSingleThread, ProtocolKind::kQueryFresh,
};

class ReplicaParamTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, int>> {
 protected:
  ProtocolKind kind() const { return std::get<0>(GetParam()); }
  int workers() const { return std::get<1>(GetParam()); }

  ProtocolOptions Options() const {
    ProtocolOptions o;
    o.num_workers = workers();
    o.snapshot_interval = std::chrono::microseconds(100);
    return o;
  }

  // Replays `log` into a fresh backup with the same table layout as the
  // primary and returns the backup database for inspection.
  void ReplayAndCheckConvergence(test::SyntheticRun& run) {
    storage::Database backup;
    workload::SyntheticWorkload::CreateTable(&backup);

    run.log.ResetReplayState();
    log::OfflineSegmentSource source(&run.log);
    auto replica = MakeReplica(kind(), &backup, Options());
    replica->Start(&source);
    replica->WaitUntilCaughtUp();
    replica->Stop();

    EXPECT_EQ(replica->stats().applied_writes.load(), run.log.NumRecords());
    EXPECT_EQ(replica->stats().applied_txns.load(),
              run.log.CountTransactions());
    EXPECT_EQ(replica->VisibleTimestamp(), run.log.MaxTimestamp());

    const std::uint64_t primary_digest =
        test::StateDigest(run.primary->db, kMaxTimestamp);
    const std::uint64_t backup_digest =
        test::StateDigest(backup, kMaxTimestamp);
    EXPECT_EQ(primary_digest, backup_digest)
        << "backup state diverged from primary";

    // Per-row version chains must be strictly decreasing in timestamp.
    const auto guard = backup.epochs().Enter();
    for (TableId t = 0; t < backup.NumTables(); ++t) {
      const storage::Table& table = backup.table(t);
      for (RowId r = 0; r < table.NumRows(); ++r) {
        Timestamp prev = kMaxTimestamp;
        for (const storage::Version* v = table.ReadLatestCommitted(r);
             v != nullptr; v = v->Next()) {
          ASSERT_LT(v->write_ts, prev) << "per-row order violated";
          prev = v->write_ts;
        }
      }
    }
  }
};

TEST_P(ReplicaParamTest, ConvergesOnInsertOnlyLog) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/false, /*clients=*/4,
                                       /*txns_per_client=*/300);
  ASSERT_TRUE(test::LogIsWellFormed(run.log));
  ReplayAndCheckConvergence(run);
}

TEST_P(ReplicaParamTest, ConvergesOnAdversarialLog) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/4,
                                       /*txns_per_client=*/300);
  ASSERT_TRUE(test::LogIsWellFormed(run.log));
  ReplayAndCheckConvergence(run);
}

TEST_P(ReplicaParamTest, ConvergesOnTwoPhaseLockingLog) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/4,
                                       /*txns_per_client=*/200,
                                       /*inserts_per_txn=*/4,
                                       /*use_2pl=*/true);
  ASSERT_TRUE(test::LogIsWellFormed(run.log));
  ReplayAndCheckConvergence(run);
}

TEST_P(ReplicaParamTest, ConvergesOnSingleWriteTxns) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/false, /*clients=*/2,
                                       /*txns_per_client=*/200,
                                       /*inserts_per_txn=*/1);
  ReplayAndCheckConvergence(run);
}

TEST_P(ReplicaParamTest, EmptyLogCompletes) {
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log::Log empty;
  log::OfflineSegmentSource source(&empty);
  auto replica = MakeReplica(kind(), &backup, Options());
  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  replica->Stop();
  EXPECT_EQ(replica->stats().applied_writes.load(), 0u);
}

TEST_P(ReplicaParamTest, ReadAtVisibleFindsReplicatedRows) {
  auto run = test::RunSyntheticPrimary(false, 2, 100, 2);
  storage::Database backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup);

  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  auto replica = MakeReplica(kind(), &backup, Options());
  replica->Start(&source);
  replica->WaitUntilCaughtUp();

  auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get());
  ASSERT_NE(base, nullptr);
  // Every key in the log must be readable at the final snapshot.
  std::uint64_t found = 0;
  for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
    for (const auto& rec : run.log.segment(s)->records()) {
      Value v;
      if (base->ReadAtVisible(table, rec.key, &v).ok()) ++found;
    }
  }
  EXPECT_EQ(found, run.log.NumRecords());
  replica->Stop();
}

// Monotonic prefix consistency under concurrent readers: while the replica
// applies the log, readers repeatedly execute two-key read-only transactions
// against pair rows that every transaction writes together with equal
// values. MPC requires (a) each read-only transaction sees equal values
// (transactional atomicity) and (b) the value sequence each reader observes
// is non-decreasing (monotonicity).
TEST_P(ReplicaParamTest, MonotonicPrefixConsistencyDuringReplay) {
  // Every protocol — lazy ones included — is read through the Snapshot
  // surface, which funnels Query Fresh's deferred instantiation through
  // PrepareRowRead; MPC must therefore hold uniformly.
  // Build a paired-write log on an MVTSO primary.
  auto primary = test::Primary::Mvtso();
  const TableId table =
      workload::SyntheticWorkload::CreateTable(&primary->db);
  constexpr Key kA = 100, kB = 200;
  {
    const Status s = primary->engine->ExecuteWithRetry([&](txn::Txn& txn) {
      Status st = txn.Put(table, kA, workload::EncodeIntValue(0));
      if (!st.ok()) return st;
      return txn.Put(table, kB, workload::EncodeIntValue(0));
    });
    ASSERT_TRUE(s.ok());
  }
  for (std::uint64_t n = 1; n <= 400; ++n) {
    // Interleave unique inserts to give parallel protocols work to reorder.
    const Status s = primary->engine->ExecuteWithRetry([&](txn::Txn& txn) {
      Status st = txn.Insert(table, 1000 + n, workload::EncodeIntValue(n));
      if (!st.ok()) return st;
      st = txn.Update(table, kA, workload::EncodeIntValue(n));
      if (!st.ok()) return st;
      return txn.Update(table, kB, workload::EncodeIntValue(n));
    });
    ASSERT_TRUE(s.ok());
  }
  log::Log log = primary->collector->Coalesce();

  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log::OfflineSegmentSource source(&log);
  auto replica = MakeReplica(kind(), &backup, Options());
  auto* base = dynamic_cast<replica::ReplicaBase*>(replica.get());
  ASSERT_NE(base, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread reader([&] {
    std::uint64_t last_seen = 0;
    Timestamp last_ts = 0;
    while (!stop.load(std::memory_order_acquire)) {
      base->ReadOnlyTxn([&](const c5::Snapshot& snap) {
        const Timestamp ts = snap.timestamp();
        if (ts < last_ts) violation.store(true);  // snapshot went backwards
        last_ts = ts;
        if (ts == 0) return;
        Value va, vb;
        const std::uint64_t a =
            snap.Get(table, kA, &va).ok() ? workload::DecodeIntValue(va) : 0;
        const std::uint64_t b =
            snap.Get(table, kB, &vb).ok() ? workload::DecodeIntValue(vb) : 0;
        if (a != b) violation.store(true);        // torn transaction
        if (a < last_seen) violation.store(true);  // regression
        last_seen = a;
      });
    }
  });

  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  stop.store(true, std::memory_order_release);
  reader.join();
  replica->Stop();

  EXPECT_FALSE(violation.load()) << "MPC violated during replay";

  // Final state: both pair rows at 400.
  Value v;
  ASSERT_TRUE(base->ReadAtVisible(table, kA, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 400u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ReplicaParamTest,
    ::testing::Combine(::testing::ValuesIn(kAllCorrectProtocols),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<ProtocolKind, int>>& info) {
      std::string name = core::ToString(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_w" + std::to_string(std::get<1>(info.param));
    });

// The unconstrained-KuaFu diagnostic still applies every write and
// terminates; it just may not converge to the primary's state.
TEST(KuaFuUnconstrainedTest, AppliesEverythingAndTerminates) {
  auto run = test::RunSyntheticPrimary(true, 4, 200);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  auto replica = MakeReplica(ProtocolKind::kKuaFuUnconstrained, &backup,
                             ProtocolOptions{.num_workers = 4});
  replica->Start(&source);
  replica->WaitUntilCaughtUp();
  replica->Stop();
  EXPECT_EQ(replica->stats().applied_writes.load(), run.log.NumRecords());
}

}  // namespace
}  // namespace c5
