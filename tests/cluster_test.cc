// The c5::Cluster public façade: bring-up, the Snapshot read surface (Get /
// MultiGet / Scan) checked against a single-thread oracle replica in the
// same fleet, session guarantees across backups, failover promotion through
// the façade, and BackupNode's recovery visibility window. The second half
// covers c5::ShardedCluster: cross-shard scatter-gather reads against a
// single-thread oracle over ALL shards, per-shard promotion while the other
// shards keep serving, and per-shard session-token monotonicity.

#include "api/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/sharded_cluster.h"
#include "ha/recovery.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

Status PutInt(Cluster& cluster, TableId table, Key key, std::uint64_t n,
              Timestamp* commit_ts = nullptr) {
  return cluster.ExecuteWithRetry(
      [&](txn::Txn& txn) {
        return txn.Put(table, key, workload::EncodeIntValue(n));
      },
      commit_ts);
}

TEST(ClusterTest, BringUpExecuteAndPointReads) {
  Cluster cluster(ClusterOptions{}
                      .WithEngine(ha::EngineKind::kMvtso)
                      .WithBackups(1, core::ProtocolKind::kC5)
                      .WithWorkers(2));
  const TableId t = cluster.CreateTable("kv");
  cluster.Start();

  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(PutInt(cluster, t, k, k * 10).ok());
  }
  cluster.StopPrimary();
  cluster.WaitForBackups();

  const Snapshot snap = cluster.OpenSnapshot();
  Value v;
  ASSERT_TRUE(snap.Get(t, 42, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 420u);
  EXPECT_EQ(snap.Get(t, 100, &v).code(), StatusCode::kNotFound);

  std::vector<Value> values;
  const auto statuses = snap.MultiGet(t, {1, 2, 999}, &values);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(statuses[2].code(), StatusCode::kNotFound);
  EXPECT_EQ(workload::DecodeIntValue(values[0]), 10u);
  EXPECT_EQ(workload::DecodeIntValue(values[1]), 20u);
  cluster.Shutdown();
}

TEST(ClusterTest, ScanIsOrderedHalfOpenAndSkipsDeleted) {
  Cluster cluster(ClusterOptions{}.WithBackups(1).WithWorkers(2));
  const TableId t = cluster.CreateTable("kv");
  cluster.Start();

  for (const std::uint64_t k : {9, 3, 27, 12, 18, 6}) {
    ASSERT_TRUE(PutInt(cluster, t, k, k).ok());
  }
  ASSERT_TRUE(cluster
                  .ExecuteWithRetry(
                      [&](txn::Txn& txn) { return txn.Delete(t, 12); })
                  .ok());
  cluster.StopPrimary();
  cluster.WaitForBackups();

  const Snapshot snap = cluster.OpenSnapshot();
  std::vector<Key> got;
  for (auto it = snap.Scan(t, 3, 27); it.Valid(); it.Next()) {
    got.push_back(it.key());
    EXPECT_EQ(workload::DecodeIntValue(Value(it.value())), it.key());
  }
  // [3, 27): 27 excluded, 12 deleted, ascending order.
  EXPECT_EQ(got, (std::vector<Key>{3, 6, 9, 18}));

  // Empty range and absent band behave.
  auto empty = snap.Scan(t, 100, 200);
  EXPECT_FALSE(empty.Valid());
  cluster.Shutdown();
}

// A heterogeneous fleet replays the same mixed workload; the parallel C5
// backup's read surface must agree with the single-thread oracle backup's,
// key by key and range by range.
TEST(ClusterTest, SnapshotReadsMatchSingleThreadOracleAcrossFleet) {
  constexpr std::uint64_t kKeyspace = 64;
  ClusterOptions options;
  options.WithEngine(ha::EngineKind::kMvtso)
      .WithWorkers(4)
      .AddBackup({.protocol = core::ProtocolKind::kC5})
      .AddBackup({.protocol = core::ProtocolKind::kSingleThread});
  Cluster cluster(options);
  const TableId t = cluster.CreateTable("kv");
  cluster.Start();

  Rng rng(test::TestSeed(99));
  for (int txn_i = 0; txn_i < 500; ++txn_i) {
    (void)cluster.ExecuteWithRetry([&](txn::Txn& txn) {
      const Key key = rng.Uniform(kKeyspace);
      switch (rng.Uniform(3)) {
        case 0: {
          const Status s = txn.Delete(t, key);
          return s.code() == StatusCode::kNotFound ? Status::Ok() : s;
        }
        default:
          return txn.Put(t, key, workload::EncodeIntValue(rng.Next()));
      }
    });
  }
  cluster.StopPrimary();
  cluster.WaitForBackups();

  const Snapshot c5_snap = cluster.OpenSnapshot(0);
  const Snapshot oracle_snap = cluster.OpenSnapshot(1);
  EXPECT_EQ(c5_snap.timestamp(), oracle_snap.timestamp());
  for (Key k = 0; k < kKeyspace; ++k) {
    Value a, b;
    const Status sa = c5_snap.Get(t, k, &a);
    const Status sb = oracle_snap.Get(t, k, &b);
    EXPECT_EQ(sa.code(), sb.code()) << "key " << k;
    if (sa.ok() && sb.ok()) {
      EXPECT_EQ(a, b) << "key " << k;
    }
  }
  // Range reads agree too (the scan surface, not just point gets).
  std::vector<std::pair<Key, Value>> got, want;
  for (auto it = c5_snap.Scan(t, 0, kKeyspace); it.Valid(); it.Next()) {
    got.emplace_back(it.key(), Value(it.value()));
  }
  for (auto it = oracle_snap.Scan(t, 0, kKeyspace); it.Valid(); it.Next()) {
    want.emplace_back(it.key(), Value(it.value()));
  }
  EXPECT_EQ(got, want);
  cluster.Shutdown();
}

TEST(ClusterTest, SnapshotPinsItsStateWhileTheBackupAdvances) {
  Cluster cluster(ClusterOptions{}.WithBackups(1).WithWorkers(2));
  const TableId t = cluster.CreateTable("kv");
  cluster.Start();

  Timestamp first_commit = 0;
  ASSERT_TRUE(PutInt(cluster, t, 7, 1, &first_commit).ok());
  cluster.Flush();
  while (cluster.backup(0).VisibleTimestamp() < first_commit) {
  }

  const Snapshot pinned = cluster.OpenSnapshot();
  Value v;
  ASSERT_TRUE(pinned.Get(t, 7, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 1u);

  Timestamp second_commit = 0;
  ASSERT_TRUE(PutInt(cluster, t, 7, 2, &second_commit).ok());
  cluster.Flush();
  while (cluster.backup(0).VisibleTimestamp() < second_commit) {
  }

  // The old handle still reads the old state; a new handle sees the new.
  ASSERT_TRUE(pinned.Get(t, 7, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 1u);
  const Snapshot fresh = cluster.OpenSnapshot();
  ASSERT_TRUE(fresh.Get(t, 7, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 2u);
  EXPECT_GT(fresh.timestamp(), pinned.timestamp());
  cluster.Shutdown();
}

TEST(ClusterTest, SessionReadsAcrossBackupsHonorTheToken) {
  // SLOW backup sits behind a shipping delay; a session whose token covers
  // the client's last write must route around it — and batch/range session
  // reads land on one covering snapshot.
  ClusterOptions options;
  options.WithWorkers(2)
      .WithSegmentRecords(32)
      .AddBackup({.protocol = core::ProtocolKind::kC5})
      .AddBackup({.protocol = core::ProtocolKind::kC5,
                  .ship_delay = std::chrono::microseconds(5000)});
  Cluster cluster(options);
  const TableId t = cluster.CreateTable("kv");
  cluster.Start();

  Timestamp last_commit = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(PutInt(cluster, t, k, k, &last_commit).ok());
  }
  cluster.Flush();

  auto session = cluster.OpenSession();
  session.OnWrite(last_commit);
  Value v;
  ASSERT_TRUE(session.Read(t, 199, &v).ok());  // read-your-writes
  EXPECT_EQ(workload::DecodeIntValue(v), 199u);
  EXPECT_GE(session.token(), last_commit);

  std::vector<Value> values;
  const auto statuses = session.MultiGet(t, {0, 100, 199}, &values);
  for (const Status& s : statuses) EXPECT_TRUE(s.ok());

  std::vector<std::pair<Key, Value>> page;
  ASSERT_TRUE(session.Scan(t, 190, 200, &page).ok());
  ASSERT_EQ(page.size(), 10u);
  EXPECT_EQ(page.front().first, 190u);
  EXPECT_EQ(page.back().first, 199u);

  // Every read was served by a backup covering the token — which the
  // laggard cannot have been at first read.
  EXPECT_GT(session.stats().reads_per_backup[0], 0u);
  cluster.Shutdown();
}

TEST(ClusterTest, PromotionThroughTheFacadeExtendsHistory) {
  Cluster cluster(ClusterOptions{}
                      .WithBackups(2, core::ProtocolKind::kC5)
                      .WithWorkers(2));
  const TableId t = cluster.CreateTable("orders");
  cluster.Start();

  for (std::uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(PutInt(cluster, t, k, k).ok());
  }
  cluster.StopPrimary();
  // Execute without a primary fails loudly rather than hanging.
  EXPECT_FALSE(PutInt(cluster, t, 1, 1).ok());

  ASSERT_TRUE(cluster.Promote(0).ok());
  EXPECT_EQ(cluster.promoted_index(), 0u);
  EXPECT_FALSE(cluster.Promote(1).ok()) << "double promotion must fail";

  // The promoted node serves reads of replicated state and new writes
  // through the same Execute surface.
  Timestamp post_commit = 0;
  for (std::uint64_t k = 300; k < 350; ++k) {
    ASSERT_TRUE(cluster
                    .ExecuteWithRetry(
                        [&](txn::Txn& txn) {
                          Value old;
                          const Status st = txn.Read(t, k - 300, &old);
                          if (!st.ok()) return st;
                          return txn.Put(t, k,
                                         workload::EncodeIntValue(k));
                        },
                        &post_commit)
                    .ok());
  }
  const Timestamp pre_failover = cluster.backup(1).VisibleTimestamp();
  EXPECT_GT(post_commit, pre_failover)
      << "promoted commits must extend the replicated history";

  // The survivor follows the combined history.
  ASSERT_TRUE(cluster.CatchUpSurvivors().ok());
  const Snapshot snap = cluster.OpenSnapshot(1);
  Value v;
  ASSERT_TRUE(snap.Get(t, 42, &v).ok());
  ASSERT_TRUE(snap.Get(t, 342, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 342u);
  EXPECT_EQ(test::StateDigest(cluster.backup(1).db(), kMaxTimestamp),
            test::StateDigest(cluster.backup(0).db(), kMaxTimestamp))
      << "survivor diverged from the promoted node";

  // Sessions opened against the fleet AFTER the survivor restart must read
  // through the survivor's NEW incarnation (CatchUpSurvivors re-points the
  // BackupSet; the old ReplicaBase is destroyed by Restart).
  auto session = cluster.OpenSession();
  session.OnWrite(post_commit);
  ASSERT_TRUE(session.Read(t, 342, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 342u);
  cluster.Shutdown();
}

// Regression: a SINGLE-backup cluster whose only node is promoted used to
// serve index-less reads from the promoted node's frozen pre-promotion
// snapshot forever (the protocol threads that publish its watermark are
// stopped by Promote). OpenSnapshot() must instead advance the watermark to
// the promoted engine's settled point and see post-promotion commits.
TEST(ClusterTest, PromotedSingleBackupServesFreshReads) {
  Cluster cluster(ClusterOptions{}
                      .WithBackups(1, core::ProtocolKind::kC5)
                      .WithWorkers(2));
  const TableId t = cluster.CreateTable("kv");
  cluster.Start();

  Timestamp pre_commit = 0;
  ASSERT_TRUE(PutInt(cluster, t, 1, 10, &pre_commit).ok());
  ASSERT_TRUE(cluster.Promote(0).ok());
  const Timestamp pinned = cluster.backup(0).VisibleTimestamp();

  // Post-promotion writes land in the promoted node's own database.
  ASSERT_TRUE(PutInt(cluster, t, 1, 20).ok());
  ASSERT_TRUE(PutInt(cluster, t, 2, 30).ok());

  // An index-less snapshot reads them — overwrite and fresh insert both.
  EXPECT_EQ(cluster.default_read_backup(), 0u);
  {
    const Snapshot snap = cluster.OpenSnapshot();
    EXPECT_GT(snap.timestamp(), pinned)
        << "promoted node's watermark never advanced past the frozen "
           "pre-promotion snapshot";
    Value v;
    ASSERT_TRUE(snap.Get(t, 1, &v).ok());
    EXPECT_EQ(workload::DecodeIntValue(v), 20u);
    ASSERT_TRUE(snap.Get(t, 2, &v).ok());
    EXPECT_EQ(workload::DecodeIntValue(v), 30u);
  }

  // Interleaved write/read rounds stay fresh AND monotonic (§2.3 holds for
  // the externally-advanced watermark too).
  Timestamp last_snap_ts = 0;
  for (std::uint64_t round = 0; round < 5; ++round) {
    ASSERT_TRUE(PutInt(cluster, t, 2, 100 + round).ok());
    const Snapshot snap = cluster.OpenSnapshot();
    EXPECT_GE(snap.timestamp(), last_snap_ts) << "snapshot regressed";
    last_snap_ts = snap.timestamp();
    Value v;
    ASSERT_TRUE(snap.Get(t, 2, &v).ok());
    EXPECT_EQ(workload::DecodeIntValue(v), 100 + round);
  }
  cluster.Shutdown();
}

// BackupNode (the standalone half of the façade): an in-place restart arms
// the recovery visibility window — readers resume at the dead incarnation's
// checkpoint, never see a snapshot inside the window, and the window closes
// at catch-up.
TEST(ClusterTest, BackupNodeRestartArmsAndClosesRecoveryWindow) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/200);
  const TableId t = 0;

  BackupNode node({.protocol = core::ProtocolKind::kC5,
                   .protocol_options = {.num_workers = 2}});
  node.CreateTable("kv");

  // Incarnation 1: half the log, then the process "dies".
  run.log.ResetReplayState();
  log::PrefixSegmentSource prefix(&run.log, run.log.NumSegments() / 2);
  node.Start(&prefix);
  node.WaitUntilCaughtUp();
  node.Stop();
  const Timestamp checkpoint = node.VisibleTimestamp();
  ASSERT_GT(checkpoint, 0u);

  // Incarnation 2: resume over the full log (idempotent redelivery).
  run.log.ResetReplayState();
  ha::ResumeSegmentSource resume(&run.log, checkpoint);
  node.Restart(&resume);
  EXPECT_EQ(node.reader().RecoveryResume(), checkpoint);
  EXPECT_GE(node.reader().RecoveryFloor(), checkpoint);
  EXPECT_GE(node.VisibleTimestamp(), checkpoint)
      << "restart must resume readers at the checkpoint, not at zero";
  node.WaitUntilCaughtUp();
  node.Stop();
  EXPECT_TRUE(node.reader().RecoveryWindowClosed());
  EXPECT_EQ(node.VisibleTimestamp(), run.log.MaxTimestamp());
  EXPECT_EQ(test::StateDigest(node.db(), kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp));

  Value v;
  EXPECT_TRUE(node.OpenSnapshot()
                  .Get(t, workload::SyntheticWorkload::kHotKey, &v)
                  .ok());
}

// ---- ShardedCluster ---------------------------------------------------------

// First key at or above `start` that routes to `shard` (the keyspaces here
// are dense, so this terminates in a couple of probes).
Key KeyOnShard(const ShardedCluster& fleet, TableId table, std::size_t shard,
               Key start) {
  Key k = start;
  while (fleet.ShardOf(table, k) != shard) ++k;
  return k;
}

// A mixed Put/Delete history is executed through the sharded façade while a
// single std::map oracle tracks what the WHOLE keyspace should hold; the
// cross-shard MultiGet and ordered Scan must agree with the oracle over all
// shards, and the routing invariant must audit clean.
TEST(ShardedClusterTest, CrossShardReadsMatchSingleThreadOracle) {
  constexpr std::uint64_t kKeyspace = 128;
  ShardedClusterOptions options;
  options.WithShards(3).WithRouterSeed(test::TestSeed(301));
  options.shard.WithBackups(1, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("kv");
  fleet.Start();

  std::map<Key, Value> oracle;  // single-thread truth over ALL shards
  Rng rng(test::TestSeed(302));
  for (int i = 0; i < 600; ++i) {
    const Key key = rng.Uniform(kKeyspace);
    if (rng.Uniform(4) == 0) {
      ASSERT_TRUE(fleet
                      .ExecuteWithRetry(t, key,
                                        [&](txn::Txn& txn) {
                                          const Status s = txn.Delete(t, key);
                                          return s.code() ==
                                                         StatusCode::kNotFound
                                                     ? Status::Ok()
                                                     : s;
                                        })
                      .ok());
      oracle.erase(key);
    } else {
      const Value value = workload::EncodeIntValue(rng.Next());
      ASSERT_TRUE(fleet
                      .ExecuteWithRetry(t, key,
                                        [&](txn::Txn& txn) {
                                          return txn.Put(t, key, value);
                                        })
                      .ok());
      oracle[key] = value;
    }
  }
  fleet.WaitForBackups();

  // Routed writes must have landed only where the router says they live.
  EXPECT_TRUE(fleet.VerifyPlacement().empty());

  // Cross-shard MultiGet in caller order, present and absent keys mixed.
  std::vector<Key> keys;
  for (Key k = 0; k < kKeyspace; ++k) keys.push_back(k);
  std::vector<Value> values;
  const auto statuses = fleet.MultiGet(t, keys, &values);
  ASSERT_EQ(statuses.size(), keys.size());
  for (Key k = 0; k < kKeyspace; ++k) {
    const auto it = oracle.find(k);
    if (it == oracle.end()) {
      EXPECT_EQ(statuses[k].code(), StatusCode::kNotFound) << "key " << k;
    } else {
      ASSERT_TRUE(statuses[k].ok()) << "key " << k;
      EXPECT_EQ(values[k], it->second) << "key " << k;
    }
  }

  // Cross-shard ordered Scan: exactly the oracle's live rows, ascending,
  // merged across the three shards' pinned snapshots.
  std::vector<std::pair<Key, Value>> rows;
  ASSERT_TRUE(fleet.Scan(t, 0, kKeyspace, &rows).ok());
  ASSERT_EQ(rows.size(), oracle.size());
  auto want = oracle.begin();
  for (std::size_t i = 0; i < rows.size(); ++i, ++want) {
    EXPECT_EQ(rows[i].first, want->first);
    EXPECT_EQ(rows[i].second, want->second);
    if (i > 0) {
      EXPECT_LT(rows[i - 1].first, rows[i].first);
    }
  }
  // Sub-range scans honor the half-open bounds across shard boundaries —
  // and Scan clears *out, so reusing the vector is safe.
  ASSERT_TRUE(fleet.Scan(t, kKeyspace / 4, kKeyspace / 2, &rows).ok());
  for (const auto& [k, v] : rows) {
    ASSERT_GE(k, kKeyspace / 4);
    ASSERT_LT(k, kKeyspace / 2);
    EXPECT_EQ(oracle.at(k), v);
  }

  // Cross-shard aggregation pushdown: the merged partials must equal the
  // oracle's fold over the same range (EncodeIntValue stores the u64 at
  // offset 0).
  AggResult agg;
  AggSpec spec;
  spec.field_offset = 0;
  spec.field_width = 8;
  spec.op = AggOp::kSum;
  ASSERT_TRUE(fleet.Aggregate(t, kKeyspace / 4, kKeyspace / 2, spec, &agg).ok());
  std::uint64_t want_rows = 0, want_sum = 0;
  std::uint64_t want_min = ~std::uint64_t{0}, want_max = 0;
  for (const auto& [k, v] : oracle) {
    if (k < kKeyspace / 4 || k >= kKeyspace / 2) continue;
    const std::uint64_t field = workload::DecodeIntValue(v);
    ++want_rows;
    want_sum += field;
    want_min = std::min(want_min, field);
    want_max = std::max(want_max, field);
  }
  EXPECT_EQ(agg.rows, want_rows);
  EXPECT_EQ(agg.sum, want_sum);
  EXPECT_EQ(agg.min, want_min);
  EXPECT_EQ(agg.max, want_max);
  EXPECT_EQ(agg.value(AggOp::kSum), want_sum);
  fleet.Shutdown();
}

// One shard fails over (stop -> promote -> new writes -> survivor catch-up)
// while the OTHER shard keeps executing transactions and serving reads the
// whole time — shard groups share nothing, so a shard's failover must not
// stall the fleet.
TEST(ShardedClusterTest, PerShardPromotionWhileOtherShardsKeepServing) {
  ShardedClusterOptions options;
  options.WithShards(2).WithRouterSeed(test::TestSeed(303));
  options.shard.WithBackups(2, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("orders");
  fleet.Start();

  const Key k0 = KeyOnShard(fleet, t, 0, 0);
  const Key k1 = KeyOnShard(fleet, t, 1, 0);
  auto put = [&](Key key, std::uint64_t n, Timestamp* commit = nullptr) {
    return fleet.ExecuteWithRetry(
        t, key,
        [&](txn::Txn& txn) {
          return txn.Put(t, key, workload::EncodeIntValue(n));
        },
        commit);
  };
  ASSERT_TRUE(put(k0, 1).ok());
  ASSERT_TRUE(put(k1, 1).ok());

  // Shard 0's primary dies. Shard 1 is untouched: its writes keep
  // committing, shard 0's fail loudly.
  fleet.StopPrimary(0);
  EXPECT_FALSE(put(k0, 2).ok());
  ASSERT_TRUE(put(k1, 2).ok());

  // Promote shard 0's backup 0; the shard accepts writes again through the
  // same routed surface.
  ASSERT_TRUE(fleet.Promote(0, 0).ok());
  EXPECT_EQ(fleet.shard(0).promoted_index(), 0u);
  Timestamp s0_commit = 0;
  ASSERT_TRUE(put(k0, 3, &s0_commit).ok());
  ASSERT_GT(s0_commit, 0u);
  Timestamp s1_commit = 0;
  ASSERT_TRUE(put(k1, 3, &s1_commit).ok());
  fleet.Flush();

  // Shard 1 serves session reads (read-your-writes included) THROUGH the
  // failover of shard 0.
  auto session = fleet.OpenSession();
  session.OnWrite(t, k1, s1_commit);
  Value v;
  ASSERT_TRUE(session.Read(t, k1, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 3u);

  // Shard 0's survivor follows the promoted history; cross-shard reads see
  // both shards' final states.
  ASSERT_TRUE(fleet.CatchUpSurvivors(0).ok());
  const Snapshot survivor = fleet.shard(0).OpenSnapshot(1);
  ASSERT_TRUE(survivor.Get(t, k0, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 3u);
  fleet.shard(1).WaitForBackups();
  std::vector<Value> values;
  const auto statuses = fleet.MultiGet(t, {k0, k1}, &values);
  ASSERT_TRUE(statuses[0].ok());
  ASSERT_TRUE(statuses[1].ok());
  EXPECT_EQ(workload::DecodeIntValue(values[0]), 3u);
  EXPECT_EQ(workload::DecodeIntValue(values[1]), 3u);
  fleet.Shutdown();
}

// Sessions carry one causality token PER SHARD: a write only constrains the
// shard it routed to, reads advance only the routed shard's token, and no
// token ever regresses.
TEST(ShardedClusterTest, SessionTokensAreMonotonicAndPerShard) {
  ShardedClusterOptions options;
  options.WithShards(2).WithRouterSeed(test::TestSeed(304));
  options.shard.WithBackups(1, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("kv");
  fleet.Start();

  const Key k0 = KeyOnShard(fleet, t, 0, 0);
  const Key k1 = KeyOnShard(fleet, t, 1, 0);

  auto session = fleet.OpenSession();
  EXPECT_EQ(session.token(0), 0u);
  EXPECT_EQ(session.token(1), 0u);

  Timestamp c0 = 0;
  ASSERT_TRUE(fleet
                  .ExecuteWithRetry(
                      t, k0,
                      [&](txn::Txn& txn) {
                        return txn.Put(t, k0, workload::EncodeIntValue(10));
                      },
                      &c0)
                  .ok());
  fleet.Flush();
  session.OnWrite(t, k0, c0);
  // The write landed on shard 0: only shard 0's token moved.
  EXPECT_GE(session.token(0), c0);
  EXPECT_EQ(session.token(1), 0u);

  // Read-your-writes on shard 0; the read may advance the token further,
  // never backward.
  const Timestamp before_read = session.token(0);
  Value v;
  ASSERT_TRUE(session.Read(t, k0, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 10u);
  EXPECT_GE(session.token(0), before_read);

  // Shard 1 activity moves shard 1's token only.
  Timestamp c1 = 0;
  ASSERT_TRUE(fleet
                  .ExecuteWithRetry(
                      t, k1,
                      [&](txn::Txn& txn) {
                        return txn.Put(t, k1, workload::EncodeIntValue(20));
                      },
                      &c1)
                  .ok());
  fleet.Flush();
  const Timestamp t0_before = session.token(0);
  session.OnWrite(t, k1, c1);
  ASSERT_TRUE(session.Read(t, k1, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 20u);
  EXPECT_GE(session.token(1), c1);
  EXPECT_EQ(session.token(0), t0_before)
      << "a shard-1 write must not disturb shard 0's token";

  // Cross-shard session reads (batch + range) keep every token monotonic.
  const Timestamp tok0 = session.token(0), tok1 = session.token(1);
  std::vector<Value> values;
  const auto statuses = session.MultiGet(t, {k0, k1}, &values);
  ASSERT_TRUE(statuses[0].ok());
  ASSERT_TRUE(statuses[1].ok());
  std::vector<std::pair<Key, Value>> rows;
  ASSERT_TRUE(session.Scan(t, 0, std::max(k0, k1) + 1, &rows).ok());
  EXPECT_GE(rows.size(), 2u);
  EXPECT_GE(session.token(0), tok0);
  EXPECT_GE(session.token(1), tok1);
  fleet.Shutdown();
}

// Unpartitioned tables (replicated catalogs, shard-local append streams —
// e.g. TPC-C's ITEM/HISTORY): the router is not authoritative, so point
// reads probe all shards, cross-shard scans are rejected (keys are not
// disjoint, no exact merge exists), and the placement audit skips them.
TEST(ShardedClusterTest, UnpartitionedTablesProbeAllShardsAndRejectScan) {
  ShardedClusterOptions options;
  options.WithShards(2).WithRouterSeed(test::TestSeed(305));
  options.shard.WithBackups(1, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("audit");
  fleet.router().MarkUnpartitioned(t);
  fleet.Start();

  // A shard-local stream writes wherever its owning transaction runs —
  // deliberately NOT the shard the key hashes to.
  const std::size_t routed = fleet.ShardOf(t, 7);
  const std::size_t other = 1 - routed;
  Timestamp commit = 0;
  ASSERT_TRUE(fleet
                  .ExecuteOnShardWithRetry(
                      other,
                      [&](txn::Txn& txn) {
                        return txn.Put(t, 7, workload::EncodeIntValue(77));
                      },
                      &commit)
                  .ok());
  fleet.Flush();

  // Read-your-writes for an ExecuteOnShard write goes through
  // OnWriteToShard (the key's hash shard is NOT where the write landed).
  Value v;
  auto session = fleet.OpenSession();
  session.OnWriteToShard(other, commit);
  ASSERT_TRUE(session.Read(t, 7, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 77u);

  fleet.WaitForBackups();
  ASSERT_TRUE(fleet.Get(t, 7, &v).ok()) << "miss on the routed shard must "
                                           "fall back to probing the rest";
  EXPECT_EQ(workload::DecodeIntValue(v), 77u);
  EXPECT_EQ(fleet.Get(t, 8, &v).code(), StatusCode::kNotFound);

  std::vector<Value> values;
  const auto statuses = fleet.MultiGet(t, {7, 8}, &values);
  ASSERT_TRUE(statuses[0].ok());
  EXPECT_EQ(workload::DecodeIntValue(values[0]), 77u);
  EXPECT_EQ(statuses[1].code(), StatusCode::kNotFound);

  std::vector<std::pair<Key, Value>> rows = {{1, Value("stale")}};
  EXPECT_EQ(fleet.Scan(t, 0, 100, &rows).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(rows.empty()) << "a failed Scan must still clear the output";

  // Aggregate shares Scan's disjoint-ownership requirement.
  AggResult agg;
  agg.rows = 99;  // stale partial: a failed Aggregate must still reset it
  EXPECT_EQ(fleet.Aggregate(t, 0, 100, AggSpec{}, &agg).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(agg.rows, 0u);

  EXPECT_TRUE(fleet.VerifyPlacement().empty())
      << "the audit must skip unpartitioned tables";

  EXPECT_EQ(session.Scan(t, 0, 100, &rows).code(),
            StatusCode::kInvalidArgument);
  fleet.Shutdown();
}

// ---- Live resharding (ShardedCluster::Rebalance) ----------------------------

// A live migration runs while closed-loop writers keep hammering BOTH
// shards — including the moving partition — through the routed surface.
// Writers never observe an error (fenced writes back off and retry inside
// ExecuteWithRetry), the final state matches a single std::map oracle over
// the whole keyspace, post-cutover MultiGet/Scan/placement-audit are clean,
// and the moved keys route to (and are served by) the destination shard.
TEST(ShardedClusterTest, RebalanceUnderLiveTrafficMatchesOracle) {
  constexpr std::uint64_t kKeyspace = 96;
  ShardedClusterOptions options;
  options.WithShards(2).WithRouterSeed(test::TestSeed(306));
  options.shard.WithBackups(1, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("kv");
  fleet.Start();

  // Move half of shard 0's tokens to shard 1.
  MigrationPlan plan;
  bool take = true;
  for (Key k = 0; k < kKeyspace; ++k) {
    if (fleet.ShardOf(t, k) != 0) continue;
    if (take) {
      ShardMove move;
      move.table = t;
      move.token = k;
      move.from = 0;
      move.to = 1;
      plan.push_back(move);
    }
    take = !take;
  }
  ASSERT_GE(plan.size(), 8u) << "placement left too few keys to migrate";

  // Closed-loop writers over disjoint key slices (no cross-thread conflicts,
  // so each thread's local oracle composes into the global truth). They run
  // before, during, and after the migration.
  constexpr int kWriters = 2;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_writes{0};
  std::array<std::map<Key, Value>, kWriters> oracles;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(test::TestSeed(307 + w));
      std::map<Key, Value>& oracle = oracles[static_cast<std::size_t>(w)];
      while (!stop.load(std::memory_order_acquire)) {
        const Key key =
            (rng.Uniform(kKeyspace / kWriters)) * kWriters +
            static_cast<Key>(w);
        if (rng.Uniform(5) == 0) {
          ASSERT_TRUE(fleet
                          .ExecuteWithRetry(
                              t, key,
                              [&](txn::Txn& txn) {
                                const Status s = txn.Delete(t, key);
                                return s.code() == StatusCode::kNotFound
                                           ? Status::Ok()
                                           : s;
                              })
                          .ok());
          oracle.erase(key);
        } else {
          const Value value = workload::EncodeIntValue(rng.Next());
          ASSERT_TRUE(fleet
                          .ExecuteWithRetry(t, key,
                                            [&](txn::Txn& txn) {
                                              return txn.Put(t, key, value);
                                            })
                          .ok());
          oracle[key] = value;
        }
        total_writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let traffic build, migrate live, let traffic keep flowing post-cutover.
  while (total_writes.load(std::memory_order_acquire) < 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  MigrationReport report;
  ASSERT_TRUE(fleet.Rebalance(plan, &report).ok());
  const std::uint64_t at_cutover = total_writes.load(std::memory_order_acquire);
  while (total_writes.load(std::memory_order_acquire) < at_cutover + 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : writers) th.join();

  // The cutover installed a new epoch and actually moved data.
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(fleet.router().CurrentEpoch(), 1u);
  EXPECT_GT(report.rows_copied, 0u);
  for (const ShardMove& move : plan) {
    EXPECT_EQ(fleet.ShardOf(t, move.token), 1u);
  }

  std::map<Key, Value> oracle;
  for (const auto& part : oracles) oracle.insert(part.begin(), part.end());
  fleet.Flush();
  fleet.WaitForBackups();

  EXPECT_TRUE(fleet.VerifyPlacement().empty());
  std::vector<Key> keys;
  for (Key k = 0; k < kKeyspace; ++k) keys.push_back(k);
  std::vector<Value> values;
  const auto statuses = fleet.MultiGet(t, keys, &values);
  ASSERT_EQ(statuses.size(), keys.size());
  for (Key k = 0; k < kKeyspace; ++k) {
    const auto it = oracle.find(k);
    if (it == oracle.end()) {
      EXPECT_EQ(statuses[k].code(), StatusCode::kNotFound) << "key " << k;
    } else {
      ASSERT_TRUE(statuses[k].ok()) << "key " << k;
      EXPECT_EQ(values[k], it->second) << "key " << k;
    }
  }
  std::vector<std::pair<Key, Value>> rows;
  ASSERT_TRUE(fleet.Scan(t, 0, kKeyspace, &rows).ok());
  ASSERT_EQ(rows.size(), oracle.size());
  auto want = oracle.begin();
  for (std::size_t i = 0; i < rows.size(); ++i, ++want) {
    EXPECT_EQ(rows[i].first, want->first);
    EXPECT_EQ(rows[i].second, want->second);
  }
  fleet.Shutdown();
}

// Session causality tokens survive a cutover: a session that wrote a moving
// key on the SOURCE shard still gets read-your-writes after the partition
// moves — the destination token is raised to the cutover's covering
// timestamp, so the post-migration read waits for a destination snapshot
// that includes the migrated write.
TEST(ShardedClusterTest, SessionCausalityTokensSurviveCutover) {
  ShardedClusterOptions options;
  options.WithShards(2).WithRouterSeed(test::TestSeed(308));
  options.shard.WithBackups(1, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("kv");
  fleet.Start();

  const Key moving = KeyOnShard(fleet, t, 0, 0);
  Timestamp commit = 0;
  ASSERT_TRUE(fleet
                  .ExecuteWithRetry(
                      t, moving,
                      [&](txn::Txn& txn) {
                        return txn.Put(t, moving,
                                       workload::EncodeIntValue(111));
                      },
                      &commit)
                  .ok());
  auto session = fleet.OpenSession();
  session.OnWrite(t, moving, commit);
  ASSERT_GE(session.token(0), commit);
  ASSERT_EQ(session.token(1), 0u);

  ShardMove move;
  move.table = t;
  move.token = moving;
  move.from = 0;
  move.to = 1;
  MigrationReport report;
  ASSERT_TRUE(fleet.Rebalance({move}, &report).ok());
  ASSERT_EQ(fleet.ShardOf(t, moving), 1u);

  // The same session reads the key it wrote — now living on shard 1. The
  // fold must raise shard 1's token; the read must see the write.
  Value v;
  ASSERT_TRUE(session.Read(t, moving, &v).ok());
  EXPECT_EQ(workload::DecodeIntValue(v), 111u);
  EXPECT_GT(session.token(1), 0u)
      << "the cutover must fold into the destination token";
  fleet.Shutdown();
}

// Regression for the mid-migration failover hole: the catch-up tail must
// keep sourcing from the source shard's CURRENT primary after a failover.
// The source primary dies after the bulk copy; a backup is promoted; MORE
// writes land on the moving partition through the promoted engine. The
// cutover must tail those post-promotion writes onto the destination — a
// tap pinned to the dead primary's log would lose them silently.
TEST(ShardedClusterTest, RebalanceSurvivesSourcePrimaryPromotionMidMigration) {
  ShardedClusterOptions options;
  options.WithShards(2).WithRouterSeed(test::TestSeed(309));
  options.shard.WithBackups(2, core::ProtocolKind::kC5).WithWorkers(2);
  ShardedCluster fleet(options);
  const TableId t = fleet.CreateTable("kv");
  fleet.Start();

  const Key moving = KeyOnShard(fleet, t, 0, 0);
  const Key moving2 = KeyOnShard(fleet, t, 0, moving + 1);
  for (const Key k : {moving, moving2}) {
    ASSERT_TRUE(fleet
                    .ExecuteWithRetry(t, k,
                                      [&](txn::Txn& txn) {
                                        return txn.Put(
                                            t, k,
                                            workload::EncodeIntValue(1));
                                      })
                    .ok());
  }

  MigrationPlan plan;
  for (const Key k : {moving, moving2}) {
    ShardMove move;
    move.table = t;
    move.token = k;
    move.from = 0;
    move.to = 1;
    plan.push_back(move);
  }

  RebalanceHooks hooks;
  hooks.after_copy = [&] {
    // Source failover in the copy->cutover window.
    ASSERT_TRUE(fleet.StopPrimary(0).ok());
    ASSERT_TRUE(fleet.Promote(0, 0).ok());
    ASSERT_EQ(fleet.shard(0).promoted_index(), 0u);
    // Post-promotion writes to the MOVING partition, through the promoted
    // engine. These exist only in the promoted primary's log — the tail
    // must carry them across the cutover.
    for (const Key k : {moving, moving2}) {
      ASSERT_TRUE(fleet
                      .ExecuteWithRetry(
                          t, k,
                          [&](txn::Txn& txn) {
                            return txn.Put(t, k,
                                           workload::EncodeIntValue(2));
                          })
                      .ok());
    }
  };
  MigrationReport report;
  ASSERT_TRUE(fleet.Rebalance(plan, &report, hooks).ok());
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_GT(report.rows_copied, 0u);
  EXPECT_GT(report.tail_records, 0u)
      << "post-promotion writes must flow through the migration tail";

  // The destination serves the post-promotion values; the audit is clean on
  // both shards (promoted source included).
  for (const Key k : {moving, moving2}) {
    EXPECT_EQ(fleet.ShardOf(t, k), 1u);
    Value v;
    ASSERT_TRUE(fleet.Get(t, k, &v).ok()) << "key " << k;
    EXPECT_EQ(workload::DecodeIntValue(v), 2u)
        << "key " << k << ": stale pre-promotion value served after cutover";
  }
  EXPECT_TRUE(fleet.VerifyPlacement().empty());
  fleet.Shutdown();
}

// Explicit unit check of the PublishVisible suppression contract.
TEST(ClusterTest, RecoveryWindowSuppressesInteriorSnapshots) {
  storage::Database db;
  class Probe : public replica::ReplicaBase {
   public:
    explicit Probe(storage::Database* db) : ReplicaBase(db) {}
    void Start(log::SegmentSource*) override {}
    void WaitUntilCaughtUp() override {}
    void Stop() override {}
    std::string name() const override { return "probe"; }
    void Publish(Timestamp ts) { PublishVisible(ts); }
  } probe(&db);

  probe.SetRecoveryWindow(/*resume_ts=*/10, /*inherited_max=*/50);
  EXPECT_EQ(probe.VisibleTimestamp(), 10u);  // readers resume here
  EXPECT_FALSE(probe.RecoveryWindowClosed());
  probe.Publish(30);  // inside the window: suppressed
  EXPECT_EQ(probe.VisibleTimestamp(), 10u);
  probe.Publish(49);  // still inside
  EXPECT_EQ(probe.VisibleTimestamp(), 10u);
  probe.Publish(50);  // covers the inherited high-water mark: closes
  EXPECT_EQ(probe.VisibleTimestamp(), 50u);
  EXPECT_TRUE(probe.RecoveryWindowClosed());
  probe.Publish(60);
  EXPECT_EQ(probe.VisibleTimestamp(), 60u);
}

}  // namespace
}  // namespace c5
