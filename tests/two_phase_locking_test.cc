#include "txn/two_phase_locking_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace c5::txn {
namespace {

class TplTest : public ::testing::Test {
 protected:
  TplTest() : engine_(&db_, &collector_, &clock_) {
    table_ = db_.CreateTable("t");
  }

  storage::Database db_;
  TxnClock clock_;
  log::PerThreadLogCollector collector_;
  TwoPhaseLockingEngine engine_;
  TableId table_;
};

TEST_F(TplTest, InsertAndRead) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "hello");
  }).ok());
  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(v, "hello");
}

TEST_F(TplTest, DuplicateInsertIsAlreadyExists) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "a");
  }).ok());
  EXPECT_EQ(engine_
                .Execute([this](Txn& txn) {
                  return txn.Insert(table_, 1, "b");
                })
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(TplTest, ReadYourOwnWrites) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Status s = txn.Insert(table_, 1, "v1");
    if (!s.ok()) return s;
    Value v;
    s = txn.Read(table_, 1, &v);
    EXPECT_EQ(v, "v1");
    return s;
  }).ok());
}

TEST_F(TplTest, DeleteThenInsertWithinTxn) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "old");
  }).ok());
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Status s = txn.Delete(table_, 1);
    if (!s.ok()) return s;
    return txn.Insert(table_, 1, "new");
  }).ok());
  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(v, "new");
}

TEST_F(TplTest, CancelledBodyReleasesLocksAndAppliesNothing) {
  engine_.Execute([this](Txn& txn) {
    EXPECT_TRUE(txn.Insert(table_, 1, "doomed").ok());
    return Status::Cancelled();
  });
  EXPECT_EQ(engine_.locks().LockedRowCountApprox(), 0u);
  EXPECT_EQ(engine_
                .Execute([this](Txn& txn) {
                  Value v;
                  return txn.Read(table_, 1, &v);
                })
                .code(),
            StatusCode::kNotFound);
}

TEST_F(TplTest, LockConflictTimesOutAndIsRetryable) {
  // Hold a lock in txn A (paused mid-body), then run txn B with a short
  // engine timeout: B must return kTimedOut.
  TwoPhaseLockingEngine::Options opts;
  opts.lock_wait_timeout = std::chrono::microseconds(30000);
  storage::Database db2;
  const TableId t2 = db2.CreateTable("t");
  TxnClock clock2;
  TwoPhaseLockingEngine eng(&db2, nullptr, &clock2, opts);

  ASSERT_TRUE(eng.Execute([t2](Txn& txn) {
    return txn.Insert(t2, 1, "x");
  }).ok());

  std::atomic<int> phase{0};
  Status b_status;
  std::thread a([&] {
    eng.Execute([&](Txn& txn) {
      const Status s = txn.Update(t2, 1, "a");
      EXPECT_TRUE(s.ok());
      phase.store(1);
      while (phase.load() != 2) std::this_thread::yield();
      return Status::Ok();
    });
  });
  while (phase.load() != 1) std::this_thread::yield();
  b_status = eng.Execute([t2](Txn& txn) {
    return txn.Update(t2, 1, "b");
  });
  phase.store(2);
  a.join();
  EXPECT_EQ(b_status.code(), StatusCode::kTimedOut);
  EXPECT_TRUE(b_status.IsRetryable());
}

TEST_F(TplTest, CommitOrderMatchesConflictOrder) {
  // Two conflicting transactions: the one acquiring the lock first commits
  // with the smaller LSN, and the final value is the second writer's.
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 1, "init");
  }).ok());
  std::atomic<int> phase{0};
  std::thread t1([&] {
    engine_.Execute([&](Txn& txn) {
      EXPECT_TRUE(txn.Update(table_, 1, "first").ok());
      phase.store(1);
      while (phase.load() != 2) std::this_thread::yield();
      return Status::Ok();
    });
  });
  while (phase.load() != 1) std::this_thread::yield();
  std::thread t2([&] {
    phase.store(2);
    ASSERT_TRUE(engine_
                    .ExecuteWithRetry([&](Txn& txn) {
                      return txn.Update(table_, 1, "second");
                    })
                    .ok());
  });
  t1.join();
  t2.join();
  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(v, "second");
}

TEST_F(TplTest, ConcurrentCountersConverge) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Put(table_, 1, workload::EncodeIntValue(0));
  }).ok());
  constexpr int kThreads = 8, kIncr = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < kIncr; ++i) {
        ASSERT_TRUE(engine_
                        .ExecuteWithRetry(
                            [this](Txn& txn) {
                              // Locking read: under read committed, a plain
                              // Read + Update would lose updates.
                              Value v;
                              Status st = txn.ReadForUpdate(table_, 1, &v);
                              if (!st.ok()) return st;
                              return txn.Update(
                                  table_, 1,
                                  workload::EncodeIntValue(
                                      workload::DecodeIntValue(v) + 1));
                            },
                            100000)
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  Value v;
  ASSERT_TRUE(engine_.Execute([this, &v](Txn& txn) {
    return txn.Read(table_, 1, &v);
  }).ok());
  EXPECT_EQ(workload::DecodeIntValue(v),
            static_cast<std::uint64_t>(kThreads) * kIncr);
}

TEST_F(TplTest, DeadlockResolvedByTimeoutRetry) {
  // Classic AB/BA deadlock; timeout-abort-retry must let both finish.
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Status s = txn.Put(table_, 1, "a");
    if (!s.ok()) return s;
    return txn.Put(table_, 2, "b");
  }).ok());

  auto transfer = [this](Key first, Key second) {
    return engine_.ExecuteWithRetry(
        [this, first, second](Txn& txn) {
          Status s = txn.Update(table_, first, "x");
          if (!s.ok()) return s;
          std::this_thread::sleep_for(std::chrono::microseconds(500));
          return txn.Update(table_, second, "y");
        },
        100000);
  };
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < 20; ++j) {
        const Status s = i % 2 == 0 ? transfer(1, 2) : transfer(2, 1);
        if (s.ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 80);
}

TEST_F(TplTest, LsnOrderMatchesPerRowInstallOrder) {
  // After concurrent updates, the row's version chain must be strictly
  // increasing in LSN from tail to head.
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Put(table_, 1, workload::EncodeIntValue(0));
  }).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < 200; ++i) {
        engine_.ExecuteWithRetry([this](Txn& txn) {
          return txn.Update(table_, 1, "v");
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto guard = db_.epochs().Enter();
  const RowId row = *db_.index(table_).Lookup(1);
  Timestamp prev = kMaxTimestamp;
  for (const storage::Version* v = db_.table(table_).ReadLatestCommitted(row);
       v != nullptr; v = v->Next()) {
    EXPECT_LT(v->write_ts, prev);
    prev = v->write_ts;
  }
}

TEST_F(TplTest, LogBoundariesAndOrdering) {
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    Status s = txn.Insert(table_, 1, "a");
    if (!s.ok()) return s;
    return txn.Insert(table_, 2, "b");
  }).ok());
  ASSERT_TRUE(engine_.Execute([this](Txn& txn) {
    return txn.Insert(table_, 3, "c");
  }).ok());
  const log::Log log = collector_.Coalesce();
  EXPECT_EQ(log.NumRecords(), 3u);
  EXPECT_EQ(log.CountTransactions(), 2u);
  EXPECT_TRUE(test::LogIsWellFormed(log));
}

TEST_F(TplTest, TimestampIsInvalidDuringBody) {
  engine_.Execute([this](Txn& txn) {
    EXPECT_EQ(txn.timestamp(), kInvalidTimestamp);
    return txn.Insert(table_, 1, "x");
  });
}

}  // namespace
}  // namespace c5::txn
