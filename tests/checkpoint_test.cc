// Checkpoint write/load fidelity and the full §9 recovery loop:
// checkpoint + archived log tail -> restarted backup identical to one that
// never crashed.

#include "storage/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/c5_replica.h"
#include "core/protocol_factory.h"
#include "ha/recovery.h"
#include "log/log_file.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5 {
namespace {

using core::MakeReplica;
using core::ProtocolKind;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CheckpointTest, RoundTripsFullState) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/150);
  const std::string path = TempPath("c5_ckpt_roundtrip.ckpt");
  const Timestamp ts = run.log.MaxTimestamp();
  ASSERT_TRUE(storage::WriteCheckpoint(run.primary->db, ts, path).ok());

  storage::Database restored;
  workload::SyntheticWorkload::CreateTable(&restored);
  Timestamp loaded_ts = 0;
  ASSERT_TRUE(storage::LoadCheckpoint(&restored, path, &loaded_ts).ok());
  EXPECT_EQ(loaded_ts, ts);
  EXPECT_EQ(test::StateDigest(restored, kMaxTimestamp),
            test::StateDigest(run.primary->db, ts));
  std::filesystem::remove(path);
}

TEST(CheckpointTest, CapturesTombstones) {
  auto primary = test::Primary::Mvtso();
  const TableId table =
      workload::SyntheticWorkload::CreateTable(&primary->db);
  ASSERT_TRUE(primary->engine
                  ->ExecuteWithRetry([&](txn::Txn& txn) {
                    Status st =
                        txn.Insert(table, 1, workload::EncodeIntValue(1));
                    if (!st.ok()) return st;
                    return txn.Insert(table, 2, workload::EncodeIntValue(2));
                  })
                  .ok());
  ASSERT_TRUE(primary->engine
                  ->ExecuteWithRetry(
                      [&](txn::Txn& txn) { return txn.Delete(table, 1); })
                  .ok());

  const std::string path = TempPath("c5_ckpt_tombstone.ckpt");
  ASSERT_TRUE(
      storage::WriteCheckpoint(primary->db, kMaxTimestamp, path).ok());
  storage::Database restored;
  workload::SyntheticWorkload::CreateTable(&restored);
  Timestamp ts = 0;
  ASSERT_TRUE(storage::LoadCheckpoint(&restored, path, &ts).ok());

  const auto guard = restored.epochs().Enter();
  const storage::Version* v1 = restored.ReadKeyAt(table, 1, kMaxTimestamp);
  ASSERT_NE(v1, nullptr);
  EXPECT_TRUE(v1->deleted) << "tombstone lost";
  const storage::Version* v2 = restored.ReadKeyAt(table, 2, kMaxTimestamp);
  ASSERT_NE(v2, nullptr);
  EXPECT_FALSE(v2->deleted);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, PersistsBindingTimestamps) {
  // A key whose row id changed (delete + re-insert): the checkpointed index
  // binding must carry its timestamp, so post-restore redelivery of the
  // OLD row's records cannot rebind the key to the dead row.
  storage::Database db;
  const TableId table = db.CreateTable("kv");
  db.table(table).EnsureRow(0);
  db.table(table).EnsureRow(1);
  // Row 0: created at ts 10, deleted at ts 20. Row 1: re-insert at ts 30.
  db.table(table).InstallCommitted(0, 10, "old");
  db.table(table).InstallCommitted(0, 20, "", /*deleted=*/true);
  db.table(table).InstallCommitted(1, 30, "new");
  db.index(table).UpsertIfNewer(/*key=*/7, /*row=*/0, /*ts=*/10);
  db.index(table).UpsertIfNewer(/*key=*/7, /*row=*/1, /*ts=*/30);

  const std::string path = TempPath("c5_ckpt_binding_ts.ckpt");
  ASSERT_TRUE(storage::WriteCheckpoint(db, kMaxTimestamp, path).ok());
  storage::Database restored;
  restored.CreateTable("kv");
  Timestamp ts = 0;
  ASSERT_TRUE(storage::LoadCheckpoint(&restored, path, &ts).ok());

  const auto binding = restored.index(table).LookupWithTs(7);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->first, 1u);
  EXPECT_EQ(binding->second, 30u);
  // Redelivered old-row creating record (at-least-once delivery after the
  // restore) must lose against the persisted newest-ts binding.
  EXPECT_FALSE(restored.index(table).UpsertIfNewer(7, 0, 10));
  EXPECT_EQ(*restored.index(table).Lookup(7), 1u);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, CorruptionIsDetected) {
  auto run = test::RunSyntheticPrimary(false, 2, 50);
  const std::string path = TempPath("c5_ckpt_corrupt.ckpt");
  ASSERT_TRUE(
      storage::WriteCheckpoint(run.primary->db, kMaxTimestamp, path).ok());

  // Flip a byte in the middle.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  storage::Database restored;
  workload::SyntheticWorkload::CreateTable(&restored);
  Timestamp ts = 0;
  EXPECT_EQ(storage::LoadCheckpoint(&restored, path, &ts).code(),
            StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, SchemaMismatchRejected) {
  auto run = test::RunSyntheticPrimary(false, 2, 20);
  const std::string path = TempPath("c5_ckpt_schema.ckpt");
  ASSERT_TRUE(
      storage::WriteCheckpoint(run.primary->db, kMaxTimestamp, path).ok());
  storage::Database wrong;  // zero tables
  Timestamp ts = 0;
  EXPECT_EQ(storage::LoadCheckpoint(&wrong, path, &ts).code(),
            StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

// The full recovery loop: a backup applies a prefix and checkpoints at its
// visible snapshot; the process dies (all in-memory state lost); a new
// process loads the checkpoint and resumes the ARCHIVED log (read back
// through the wire format) from the checkpoint timestamp. Final state must
// equal the primary's.
TEST(CheckpointTest, CheckpointPlusArchiveTailRecoversExactState) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/4,
                                       /*txns_per_client=*/150);
  const std::string archive_path = TempPath("c5_recovery.log");
  const std::string ckpt_path = TempPath("c5_recovery.ckpt");

  // The shipping relay archives every segment.
  {
    log::LogFileWriter writer;
    ASSERT_TRUE(writer.Open(archive_path).ok());
    for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
      ASSERT_TRUE(writer.Append(*run.log.segment(s)).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }

  // First incarnation: applies ~60% of the log, checkpoints, dies.
  Timestamp ckpt_ts = 0;
  {
    storage::Database backup;
    workload::SyntheticWorkload::CreateTable(&backup);
    run.log.ResetReplayState();
    struct Partial : log::SegmentSource {
      log::Log* log;
      std::size_t count, pos = 0;
      Partial(log::Log* l, std::size_t c) : log(l), count(c) {}
      log::LogSegment* Next() override {
        return pos < count ? log->segment(pos++) : nullptr;
      }
    } prefix(&run.log, run.log.NumSegments() * 3 / 5);
    auto replica = MakeReplica(ProtocolKind::kC5, &backup,
                               {.num_workers = 4});
    replica->Start(&prefix);
    replica->WaitUntilCaughtUp();
    const Timestamp visible = replica->VisibleTimestamp();
    ASSERT_TRUE(storage::WriteCheckpoint(backup, visible, ckpt_path).ok());
    ckpt_ts = visible;
    replica->Stop();
    // `backup` is destroyed here: the crash.
  }
  ASSERT_GT(ckpt_ts, 0u);
  ASSERT_LT(ckpt_ts, run.log.MaxTimestamp());

  // Second incarnation: fresh process state.
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  Timestamp resume_ts = 0;
  ASSERT_TRUE(
      storage::LoadCheckpoint(&backup, ckpt_path, &resume_ts).ok());
  EXPECT_EQ(resume_ts, ckpt_ts);

  log::ReadLogResult archive;
  ASSERT_TRUE(log::ReadLogFile(archive_path, &archive).ok());
  ASSERT_TRUE(archive.clean_end);

  ha::ResumeSegmentSource resume(&archive.log, resume_ts);
  auto replica = MakeReplica(ProtocolKind::kC5, &backup, {.num_workers = 4});
  replica->Start(&resume);
  replica->WaitUntilCaughtUp();
  EXPECT_EQ(replica->VisibleTimestamp(), run.log.MaxTimestamp());
  replica->Stop();
  EXPECT_GT(resume.skipped(), 0u) << "checkpoint should skip covered work";

  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp));
  std::filesystem::remove(archive_path);
  std::filesystem::remove(ckpt_path);
}

// Checkpoints taken WHILE workers apply later writes: the multi-version
// store keeps the snapshot at ts stable, so a checkpoint at the visible
// snapshot is identical to one taken after quiescing.
TEST(CheckpointTest, ConcurrentCheckpointMatchesQuiescedCheckpoint) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/200);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  auto replica = MakeReplica(ProtocolKind::kC5, &backup, {.num_workers = 4});
  replica->Start(&source);

  // Spin until some progress, then checkpoint at the then-visible snapshot
  // while replay continues.
  Timestamp mid = 0;
  while ((mid = replica->VisibleTimestamp()) == 0) {
  }
  const std::string live_path = TempPath("c5_ckpt_live.ckpt");
  ASSERT_TRUE(storage::WriteCheckpoint(backup, mid, live_path).ok());

  replica->WaitUntilCaughtUp();
  replica->Stop();

  // Quiesced reference at the same snapshot.
  const std::string ref_path = TempPath("c5_ckpt_ref.ckpt");
  ASSERT_TRUE(storage::WriteCheckpoint(backup, mid, ref_path).ok());

  storage::Database from_live, from_ref;
  workload::SyntheticWorkload::CreateTable(&from_live);
  workload::SyntheticWorkload::CreateTable(&from_ref);
  Timestamp ts1 = 0, ts2 = 0;
  ASSERT_TRUE(storage::LoadCheckpoint(&from_live, live_path, &ts1).ok());
  ASSERT_TRUE(storage::LoadCheckpoint(&from_ref, ref_path, &ts2).ok());
  EXPECT_EQ(ts1, ts2);
  EXPECT_EQ(test::StateDigest(from_live, kMaxTimestamp),
            test::StateDigest(from_ref, kMaxTimestamp));
  std::filesystem::remove(live_path);
  std::filesystem::remove(ref_path);
}


// C5's snapshotter writes checkpoints automatically when configured; a
// restart from the auto-checkpoint plus the log resumes to the exact state.
TEST(CheckpointTest, C5AutoCheckpointEnablesResume) {
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/2,
                                       /*txns_per_client=*/300);
  const std::string ckpt_path = TempPath("c5_auto.ckpt");

  // Checkpoint knobs live on the concrete type, not the factory options.
  {
    storage::Database backup;
    workload::SyntheticWorkload::CreateTable(&backup);
    run.log.ResetReplayState();
    log::OfflineSegmentSource source(&run.log);
    core::C5Replica::Options o;
    o.num_workers = 4;
    o.snapshot_interval = std::chrono::microseconds(100);
    o.checkpoint_path = ckpt_path;
    o.checkpoint_every = 2;
    core::C5Replica replica(&backup, o);
    replica.Start(&source);
    replica.WaitUntilCaughtUp();
    replica.Stop();
    ASSERT_GT(replica.last_checkpoint_ts(), 0u)
        << "snapshotter never wrote a checkpoint";
  }

  // Fresh process: recover from the auto-checkpoint + the log.
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  Timestamp resume_ts = 0;
  ASSERT_TRUE(storage::LoadCheckpoint(&backup, ckpt_path, &resume_ts).ok());
  ASSERT_GT(resume_ts, 0u);

  run.log.ResetReplayState();
  ha::ResumeSegmentSource resume(&run.log, resume_ts);
  auto replica = MakeReplica(ProtocolKind::kC5, &backup, {.num_workers = 4});
  replica->Start(&resume);
  replica->WaitUntilCaughtUp();
  replica->Stop();

  EXPECT_EQ(test::StateDigest(backup, kMaxTimestamp),
            test::StateDigest(run.primary->db, kMaxTimestamp));
  std::filesystem::remove(ckpt_path);
}

}  // namespace
}  // namespace c5

