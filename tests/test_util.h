#ifndef C5_TESTS_TEST_UTIL_H_
#define C5_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "log/log_collector.h"
#include "log/log_segment.h"
#include "sim/dst_oracle.h"
#include "storage/database.h"
#include "txn/mvtso_engine.h"
#include "txn/two_phase_locking_engine.h"
#include "txn/txn.h"
#include "workload/runner.h"
#include "workload/synthetic.h"

namespace c5::test {

namespace internal {

// Collects every RNG seed a test requested through TestSeed() and prints
// them when the test fails, so any randomized failure is reproducible.
class SeedListener : public ::testing::EmptyTestEventListener {
 public:
  static SeedListener& Instance() {
    static SeedListener* listener = [] {
      auto* l = new SeedListener();  // owned by gtest after Append
      ::testing::UnitTest::GetInstance()->listeners().Append(l);
      return l;
    }();
    return *listener;
  }

  void Note(std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::find(seeds_.begin(), seeds_.end(), seed) == seeds_.end()) {
      seeds_.push_back(seed);
    }
  }

  void OnTestStart(const ::testing::TestInfo&) override { Clear(); }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (info.result()->Failed() && !seeds_.empty()) {
      std::fprintf(stderr,
                   "[  SEEDS   ] %s.%s used RNG seed%s", info.test_suite_name(),
                   info.name(), seeds_.size() == 1 ? "" : "s");
      for (const std::uint64_t s : seeds_) {
        std::fprintf(stderr, " %llu", static_cast<unsigned long long>(s));
      }
      const char* env = std::getenv("C5_TEST_SEED");
      std::fprintf(stderr,
                   "; rerun with C5_TEST_SEED=%s to reproduce\n",
                   env == nullptr ? "0" : env);
    }
    seeds_.clear();
  }

 private:
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    seeds_.clear();
  }

  std::mutex mu_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace internal

// The seed for a randomized test: `default_seed` normally; C5_TEST_SEED=<n>
// (n != 0) PERTURBS every seed deterministically instead of replacing it, so
// tests that draw several distinct seeds keep them distinct and any run —
// default or perturbed — is reproduced exactly by rerunning with the same
// C5_TEST_SEED value (0 / unset = the defaults). Every seed returned here is
// printed if the test fails, together with the C5_TEST_SEED value to rerun
// with.
inline std::uint64_t TestSeed(std::uint64_t default_seed) {
  std::uint64_t seed = default_seed;
  if (const char* env = std::getenv("C5_TEST_SEED")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 10);
    if (n != 0) seed = default_seed ^ (n * 0x9E3779B97F4A7C15ull);
  }
  internal::SeedListener::Instance().Note(seed);
  return seed;
}

// Interns a value string for the lifetime of the test binary and returns a
// stable view of it. Hand-built LogRecords carry non-owning ValueRefs, so a
// test materializing values on the fly ("v" + std::to_string(ts)) needs
// somewhere for the bytes to live. Thread-safe (collector tests log from
// several threads); leaks by design, like any intern pool.
inline std::string_view InternValue(std::string s) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> pool;
  std::lock_guard<std::mutex> lock(mu);
  pool.push_back(std::make_unique<std::string>(std::move(s)));
  return *pool.back();
}

// Digest of a database's committed state at `ts`: fold of every row's
// (table, row, deleted, data) into one hash. Primary and backup assign
// identical row ids (the log dictates them), so equal digests mean equal
// states. (Shared with the DST harness, whose invariant checker uses the
// same oracle — see src/sim/dst_oracle.h.)
inline std::uint64_t StateDigest(storage::Database& db, Timestamp ts) {
  return sim::StateDigest(db, ts);
}

// A primary world: database + clock + collector + engine.
struct Primary {
  storage::Database db;
  TxnClock clock;
  std::unique_ptr<log::PerThreadLogCollector> collector;
  std::unique_ptr<txn::Engine> engine;

  static std::unique_ptr<Primary> Mvtso() {
    auto p = std::make_unique<Primary>();
    p->collector = std::make_unique<log::PerThreadLogCollector>(256);
    p->engine = std::make_unique<txn::MvtsoEngine>(&p->db, p->collector.get(),
                                                   &p->clock);
    return p;
  }
  static std::unique_ptr<Primary> Tpl() {
    auto p = std::make_unique<Primary>();
    p->collector = std::make_unique<log::PerThreadLogCollector>(256);
    p->engine = std::make_unique<txn::TwoPhaseLockingEngine>(
        &p->db, p->collector.get(), &p->clock);
    return p;
  }
};

// Runs the synthetic workload on a fresh MVTSO primary and returns the
// coalesced log plus the primary (for state comparison).
struct SyntheticRun {
  std::unique_ptr<Primary> primary;
  TableId table;
  log::Log log;
};

inline SyntheticRun RunSyntheticPrimary(bool adversarial, int clients,
                                        std::uint64_t txns_per_client,
                                        std::uint32_t inserts_per_txn = 4,
                                        bool use_2pl = false,
                                        std::uint64_t seed = 0) {
  if (seed == 0) seed = TestSeed(1);
  SyntheticRun run;
  run.primary = use_2pl ? Primary::Tpl() : Primary::Mvtso();
  run.table = workload::SyntheticWorkload::CreateTable(&run.primary->db);
  workload::SyntheticWorkload wl(
      run.table, {.inserts_per_txn = inserts_per_txn,
                  .adversarial = adversarial});
  if (adversarial) {
    const Status s = wl.LoadHotRow(*run.primary->engine);
    (void)s;
  }
  std::vector<std::uint64_t> seqs(clients, 0);
  workload::RunClosedLoop(
      clients, std::chrono::milliseconds(0), txns_per_client,
      [&](std::uint32_t client, Rng& rng) {
        return wl.RunTxn(*run.primary->engine, rng, client, &seqs[client]);
      },
      seed);
  run.log = run.primary->collector->Coalesce();
  return run;
}

// Asserts structural log sanity: timestamps non-decreasing, transactions
// contiguous and never spanning segments, base_seq contiguous. (Delegates
// to the DST harness's oracle so the two checkers cannot drift.)
inline bool LogIsWellFormed(const log::Log& log) {
  return sim::LogWellFormed(log, nullptr);
}

}  // namespace c5::test

#endif  // C5_TESTS_TEST_UTIL_H_
