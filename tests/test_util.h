#ifndef C5_TESTS_TEST_UTIL_H_
#define C5_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "log/log_collector.h"
#include "log/log_segment.h"
#include "storage/database.h"
#include "txn/mvtso_engine.h"
#include "txn/two_phase_locking_engine.h"
#include "txn/txn.h"
#include "workload/runner.h"
#include "workload/synthetic.h"

namespace c5::test {

// Digest of a database's committed state at `ts`: fold of every row's
// (table, row, deleted, data) into one hash. Primary and backup assign
// identical row ids (the log dictates them), so equal digests mean equal
// states.
inline std::uint64_t StateDigest(storage::Database& db, Timestamp ts) {
  const auto guard = db.epochs().Enter();
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  };
  for (TableId t = 0; t < db.NumTables(); ++t) {
    const storage::Table& table = db.table(t);
    const RowId n = table.NumRows();
    for (RowId r = 0; r < n; ++r) {
      const storage::Version* v = table.ReadAt(r, ts);
      if (v == nullptr) continue;
      mix(t);
      mix(r);
      mix(v->deleted ? 1 : 0);
      std::uint64_t dh = 1469598103934665603ull;
      for (const char c : v->value()) {
        dh = (dh ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
      }
      mix(dh);
    }
  }
  return h;
}

// A primary world: database + clock + collector + engine.
struct Primary {
  storage::Database db;
  TxnClock clock;
  std::unique_ptr<log::PerThreadLogCollector> collector;
  std::unique_ptr<txn::Engine> engine;

  static std::unique_ptr<Primary> Mvtso() {
    auto p = std::make_unique<Primary>();
    p->collector = std::make_unique<log::PerThreadLogCollector>(256);
    p->engine = std::make_unique<txn::MvtsoEngine>(&p->db, p->collector.get(),
                                                   &p->clock);
    return p;
  }
  static std::unique_ptr<Primary> Tpl() {
    auto p = std::make_unique<Primary>();
    p->collector = std::make_unique<log::PerThreadLogCollector>(256);
    p->engine = std::make_unique<txn::TwoPhaseLockingEngine>(
        &p->db, p->collector.get(), &p->clock);
    return p;
  }
};

// Runs the synthetic workload on a fresh MVTSO primary and returns the
// coalesced log plus the primary (for state comparison).
struct SyntheticRun {
  std::unique_ptr<Primary> primary;
  TableId table;
  log::Log log;
};

inline SyntheticRun RunSyntheticPrimary(bool adversarial, int clients,
                                        std::uint64_t txns_per_client,
                                        std::uint32_t inserts_per_txn = 4,
                                        bool use_2pl = false) {
  SyntheticRun run;
  run.primary = use_2pl ? Primary::Tpl() : Primary::Mvtso();
  run.table = workload::SyntheticWorkload::CreateTable(&run.primary->db);
  workload::SyntheticWorkload wl(
      run.table, {.inserts_per_txn = inserts_per_txn,
                  .adversarial = adversarial});
  if (adversarial) {
    const Status s = wl.LoadHotRow(*run.primary->engine);
    (void)s;
  }
  std::vector<std::uint64_t> seqs(clients, 0);
  workload::RunClosedLoop(
      clients, std::chrono::milliseconds(0), txns_per_client,
      [&](std::uint32_t client, Rng& rng) {
        return wl.RunTxn(*run.primary->engine, rng, client, &seqs[client]);
      });
  run.log = run.primary->collector->Coalesce();
  return run;
}

// Asserts structural log sanity: timestamps non-decreasing, transactions
// contiguous and never spanning segments.
inline bool LogIsWellFormed(const log::Log& log) {
  Timestamp prev_ts = 0;
  for (std::size_t s = 0; s < log.NumSegments(); ++s) {
    const log::LogSegment* seg = log.segment(s);
    if (seg->empty()) return false;
    if (!seg->records().back().last_in_txn) return false;  // txn spans segs
    Timestamp open_txn = kInvalidTimestamp;
    for (const log::LogRecord& rec : seg->records()) {
      if (rec.commit_ts < prev_ts) return false;
      prev_ts = rec.commit_ts;
      if (open_txn != kInvalidTimestamp && rec.commit_ts != open_txn) {
        return false;  // interleaved transactions
      }
      open_txn = rec.last_in_txn ? kInvalidTimestamp : rec.commit_ts;
    }
  }
  return true;
}

}  // namespace c5::test

#endif  // C5_TESTS_TEST_UTIL_H_
