// C5-specific behaviour: scheduler preprocessing (prev_timestamp chains),
// worker deferral, snapshot boundary alignment, and the MyRocks variant's
// blocking snapshotter.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "core/c5_myrocks_replica.h"
#include "core/c5_replica.h"
#include "log/segment_source.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace c5::core {
namespace {

TEST(C5SchedulerTest, PrevTimestampsFormPerRowChains) {
  // After a C5 replay, every segment is preprocessed and prev_ts fields
  // form, for each row, a chain 0 -> ts1 -> ts2 ... in log order.
  auto run = test::RunSyntheticPrimary(/*adversarial=*/true, /*clients=*/4,
                                       /*txns_per_client=*/200);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  log::OfflineSegmentSource source(&run.log);
  C5Replica replica(&backup, C5Replica::Options{.num_workers = 4});
  replica.Start(&source);
  replica.WaitUntilCaughtUp();
  replica.Stop();

  std::unordered_map<std::uint64_t, Timestamp> last;
  for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
    const log::LogSegment* seg = run.log.segment(s);
    EXPECT_TRUE(seg->preprocessed());
    for (const auto& rec : seg->records()) {
      const std::uint64_t row_name =
          (static_cast<std::uint64_t>(rec.table) << 56) | rec.row;
      auto it = last.find(row_name);
      const Timestamp expected =
          it == last.end() ? kInvalidTimestamp : it->second;
      ASSERT_EQ(rec.prev_ts, expected)
          << "prev_ts chain broken for row " << rec.row;
      last[row_name] = rec.commit_ts;
    }
  }
}

TEST(C5WorkerTest, AdversarialLogNeverDefersUnderRowAffinity) {
  // The scheduler partitions records by row, so every write of the hot row
  // lands on the same worker in log order: its predecessor is always
  // installed by the time the successor is attempted, and the deferred
  // queue (a defensive fallback) stays empty even on an adversarial
  // hot-row log. Convergence must hold regardless.
  auto run = test::RunSyntheticPrimary(true, 4, 500, /*inserts=*/1);
  {
    storage::Database backup;
    workload::SyntheticWorkload::CreateTable(&backup);
    run.log.ResetReplayState();
    log::OfflineSegmentSource source(&run.log);
    C5Replica replica(&backup, C5Replica::Options{.num_workers = 4});
    replica.Start(&source);
    replica.WaitUntilCaughtUp();
    replica.Stop();
    EXPECT_EQ(test::StateDigest(run.primary->db, kMaxTimestamp),
              test::StateDigest(backup, kMaxTimestamp));
    EXPECT_EQ(replica.stats().deferred_writes.load(), 0u)
        << "row-affinity partitioning should make deferral unreachable";
    // Row affinity must not degenerate into one worker doing everything:
    // with many distinct rows, at least two workers apply records.
    int active_workers = 0;
    for (const auto& load : replica.WorkerLoads()) {
      if (load.applied_records > 0) ++active_workers;
    }
    EXPECT_GE(active_workers, 2) << "hash partitioning collapsed onto one "
                                    "worker";
  }
}

TEST(C5SnapshotTest, VisibleTimestampIsAlwaysAPrefixCompleteReadPoint) {
  // Sample the snapshot during replay. §4.2's transaction-boundary
  // alignment is automatic in C5-Cicada because every write of a
  // transaction carries the transaction's commit timestamp: ANY read point
  // c exposes only whole transactions (those with commit_ts <= c). The
  // sampled value itself need not equal a commit timestamp — worker c'
  // values are (next timestamp - 1), and MVTSO leaves timestamp holes for
  // aborted transactions. The checkable invariants are: c is monotonic,
  // never exceeds the log, and every write of every transaction at or below
  // a sampled c has been applied (prefix completeness).
  auto run = test::RunSyntheticPrimary(true, 4, 400);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  C5Replica replica(&backup, C5Replica::Options{
                                 .num_workers = 4,
                                 .snapshot_interval =
                                     std::chrono::microseconds(50)});
  replica.Start(&source);
  Timestamp prev = 0;
  std::vector<Timestamp> samples;
  for (int i = 0; i < 1000; ++i) {
    const Timestamp c = replica.VisibleTimestamp();
    ASSERT_GE(c, prev) << "snapshot went backwards";
    ASSERT_LE(c, run.log.MaxTimestamp());
    samples.push_back(c);
    prev = c;
  }
  replica.WaitUntilCaughtUp();
  EXPECT_EQ(replica.VisibleTimestamp(), run.log.MaxTimestamp());
  replica.Stop();

  // Post-hoc prefix completeness for the largest mid-replay sample: every
  // record with commit_ts <= c must be in the backup (it is, trivially, now
  // that replay finished — the meaningful part ran DURING replay via the
  // monotonicity asserts — but verify the row data matches the log's last
  // write at or below c for the hot row, which changes every transaction).
  const Timestamp c = samples.back();
  const log::LogRecord* last_hot_below_c = nullptr;
  for (std::size_t s = 0; s < run.log.NumSegments(); ++s) {
    for (const auto& rec : run.log.segment(s)->records()) {
      if (rec.key == workload::SyntheticWorkload::kHotKey &&
          rec.commit_ts <= c) {
        last_hot_below_c = &rec;
      }
    }
  }
  if (last_hot_below_c != nullptr) {
    const auto guard = backup.epochs().Enter();
    const storage::Version* v =
        backup.ReadKeyAt(run.table, workload::SyntheticWorkload::kHotKey, c);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->value(), last_hot_below_c->value.view())
        << "state at sampled snapshot c=" << c
        << " does not match the log prefix";
  }
}

TEST(C5GcTest, SnapshotterGcBoundsVersionCount) {
  // With GC enabled, the hot row's chain must be trimmed during replay.
  auto run = test::RunSyntheticPrimary(true, 2, 2000, /*inserts=*/1);
  storage::Database backup;
  const TableId table = workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  C5Replica replica(&backup,
                    C5Replica::Options{.num_workers = 2,
                                       .snapshot_interval =
                                           std::chrono::microseconds(50),
                                       .gc_every = 2});
  replica.Start(&source);
  replica.WaitUntilCaughtUp();
  replica.Stop();
  // One final sweep at the end.
  backup.CollectGarbage(replica.VisibleTimestamp() - 1);
  backup.epochs().ReclaimSome();

  const auto guard = backup.epochs().Enter();
  const RowId hot = *backup.index(table).Lookup(
      workload::SyntheticWorkload::kHotKey);
  std::size_t chain = 0;
  for (const storage::Version* v = backup.table(table).ReadLatestCommitted(hot);
       v != nullptr; v = v->Next()) {
    ++chain;
  }
  EXPECT_LT(chain, 4000u) << "GC never trimmed the hot chain";
  // And the newest value still matches the primary.
  EXPECT_EQ(test::StateDigest(run.primary->db, kMaxTimestamp),
            test::StateDigest(backup, kMaxTimestamp));
}

TEST(C5MyRocksTest, BlockingSnapshotterStillConverges) {
  auto run = test::RunSyntheticPrimary(true, 4, 300);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  C5MyRocksReplica replica(
      &backup,
      C5MyRocksReplica::Options{
          .num_workers = 4,
          .snapshot_interval = std::chrono::microseconds(200),
          .snapshot_cost = std::chrono::microseconds(100)});
  replica.Start(&source);
  replica.WaitUntilCaughtUp();
  replica.Stop();
  EXPECT_GT(replica.stats().snapshots_taken.load(), 0u);
  EXPECT_EQ(test::StateDigest(run.primary->db, kMaxTimestamp),
            test::StateDigest(backup, kMaxTimestamp));
}

TEST(C5MyRocksTest, OneWorkerEqualsSingleThreadSemantics) {
  auto run = test::RunSyntheticPrimary(false, 2, 200);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  C5MyRocksReplica replica(&backup,
                           C5MyRocksReplica::Options{.num_workers = 1});
  replica.Start(&source);
  replica.WaitUntilCaughtUp();
  replica.Stop();
  EXPECT_EQ(test::StateDigest(run.primary->db, kMaxTimestamp),
            test::StateDigest(backup, kMaxTimestamp));
}

TEST(C5WatermarkTest, WatermarkTracksScheduledMax) {
  auto run = test::RunSyntheticPrimary(false, 2, 100);
  storage::Database backup;
  workload::SyntheticWorkload::CreateTable(&backup);
  run.log.ResetReplayState();
  log::OfflineSegmentSource source(&run.log);
  C5Replica replica(&backup, C5Replica::Options{.num_workers = 2});
  replica.Start(&source);
  replica.WaitUntilCaughtUp();
  EXPECT_EQ(replica.watermark(), run.log.MaxTimestamp());
  replica.Stop();
}

TEST(C5StressTest, ManyWorkersHighContention) {
  auto run = test::RunSyntheticPrimary(true, 8, 500, /*inserts=*/2);
  for (const int workers : {1, 2, 8, 16}) {
    storage::Database backup;
    workload::SyntheticWorkload::CreateTable(&backup);
    run.log.ResetReplayState();
    log::OfflineSegmentSource source(&run.log);
    C5Replica replica(&backup, C5Replica::Options{.num_workers = workers});
    replica.Start(&source);
    replica.WaitUntilCaughtUp();
    replica.Stop();
    ASSERT_EQ(test::StateDigest(run.primary->db, kMaxTimestamp),
              test::StateDigest(backup, kMaxTimestamp))
        << "diverged with " << workers << " workers";
  }
}

}  // namespace
}  // namespace c5::core
