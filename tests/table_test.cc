#include "storage/table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/database.h"

namespace c5::storage {
namespace {

class TableTest : public ::testing::Test {
 protected:
  Table table_{"t"};
  EpochManager epochs_;
};

TEST_F(TableTest, AllocateRowsAreSequential) {
  EXPECT_EQ(table_.AllocateRow(), 0u);
  EXPECT_EQ(table_.AllocateRow(), 1u);
  EXPECT_EQ(table_.NumRows(), 2u);
}

TEST_F(TableTest, EnsureRowExtendsNumRows) {
  table_.EnsureRow(100);
  EXPECT_EQ(table_.NumRows(), 101u);
  table_.EnsureRow(5);  // no shrink
  EXPECT_EQ(table_.NumRows(), 101u);
}

TEST_F(TableTest, EnsureRowAcrossChunkBoundary) {
  table_.EnsureRow(70000);  // beyond the first 64Ki chunk
  table_.InstallCommitted(70000, 1, "x");
  const Version* v = table_.ReadLatestCommitted(70000);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value(), "x");
}

TEST_F(TableTest, EmptyRowReadsNull) {
  table_.EnsureRow(0);
  EXPECT_EQ(table_.ReadAt(0, 100), nullptr);
  EXPECT_EQ(table_.HeadTimestamp(0), kInvalidTimestamp);
  EXPECT_EQ(table_.NewestVisibleTimestamp(0), kInvalidTimestamp);
}

TEST_F(TableTest, ReadAtSelectsByTimestamp) {
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 10, "v10");
  table_.InstallCommitted(r, 20, "v20");
  table_.InstallCommitted(r, 30, "v30");

  EXPECT_EQ(table_.ReadAt(r, 5), nullptr);
  EXPECT_EQ(table_.ReadAt(r, 10)->value(), "v10");
  EXPECT_EQ(table_.ReadAt(r, 19)->value(), "v10");
  EXPECT_EQ(table_.ReadAt(r, 20)->value(), "v20");
  EXPECT_EQ(table_.ReadAt(r, 29)->value(), "v20");
  EXPECT_EQ(table_.ReadAt(r, kMaxTimestamp)->value(), "v30");
}

TEST_F(TableTest, TombstonesAreReturnedWithDeletedFlag) {
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 10, "v10");
  table_.InstallCommitted(r, 20, "", /*deleted=*/true);
  const Version* v = table_.ReadAt(r, 25);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->deleted);
  EXPECT_FALSE(table_.ReadAt(r, 15)->deleted);
}

TEST_F(TableTest, HeadAndNewestVisibleTimestamps) {
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 10, "a");
  EXPECT_EQ(table_.HeadTimestamp(r), 10u);
  EXPECT_EQ(table_.NewestVisibleTimestamp(r), 10u);
}

TEST_F(TableTest, TryInstallIfPrevRequiresPredecessorInPlace) {
  const RowId r = table_.AllocateRow();
  // Row empty: a write whose predecessor is missing must wait.
  EXPECT_EQ(table_.TryInstallIfPrev(r, 5, 10, "x"), PrevInstall::kNotReady);
  EXPECT_EQ(table_.TryInstallIfPrev(r, kInvalidTimestamp, 10, "v10"),
            PrevInstall::kInstalled);
  // Predecessor (15) still missing.
  EXPECT_EQ(table_.TryInstallIfPrev(r, 15, 20, "v20"),
            PrevInstall::kNotReady);
  // Clean-replay case: head equals prev_ts exactly.
  EXPECT_EQ(table_.TryInstallIfPrev(r, 10, 20, "v20"),
            PrevInstall::kInstalled);
  EXPECT_EQ(table_.ReadLatestCommitted(r)->value(), "v20");
}

TEST_F(TableTest, TryInstallIfPrevIsIdempotentUnderRedelivery) {
  const RowId r = table_.AllocateRow();
  ASSERT_EQ(table_.TryInstallIfPrev(r, kInvalidTimestamp, 10, "v10"),
            PrevInstall::kInstalled);
  ASSERT_EQ(table_.TryInstallIfPrev(r, 10, 20, "v20"),
            PrevInstall::kInstalled);
  // Redelivered records (at-least-once shipping) are recognized as applied,
  // whatever prev_ts the rebuilt chain assigned them.
  EXPECT_EQ(table_.TryInstallIfPrev(r, kInvalidTimestamp, 10, "v10"),
            PrevInstall::kAlreadyApplied);
  EXPECT_EQ(table_.TryInstallIfPrev(r, 10, 20, "v20"),
            PrevInstall::kAlreadyApplied);
  EXPECT_EQ(table_.TryInstallIfPrev(r, 20, 20, "v20"),
            PrevInstall::kAlreadyApplied);
  EXPECT_EQ(table_.ReadLatestCommitted(r)->value(), "v20");
  // Exactly one version per timestamp: the chain is 20 -> 10 -> null.
  const Version* v = table_.ReadLatestCommitted(r);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->write_ts, 20u);
  ASSERT_NE(v->Next(), nullptr);
  EXPECT_EQ(v->Next()->write_ts, 10u);
  EXPECT_EQ(v->Next()->Next(), nullptr);
}

TEST_F(TableTest, TryInstallIfPrevResumesOverCoveredPredecessors) {
  // Checkpoint-resume case: the row's recovered head (20) lies strictly
  // between a redelivered record's prev_ts (10) and its commit ts (30) —
  // its true predecessor was superseded by recovered state. Install.
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 20, "recovered");
  EXPECT_EQ(table_.TryInstallIfPrev(r, 10, 30, "v30"),
            PrevInstall::kInstalled);
  EXPECT_EQ(table_.ReadLatestCommitted(r)->value(), "v30");
}

TEST_F(TableTest, PendingInstallAndCommit) {
  const RowId r = table_.AllocateRow();
  Version* v = table_.NewPendingVersion(10, "pending", false);
  ASSERT_EQ(table_.TryInstallPending(r, v), InstallResult::kOk);
  // Not yet committed: a reader above 10 spins until resolution, so resolve
  // from another thread.
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    v->SetStatus(VersionStatus::kCommitted);
  });
  const Version* read = table_.ReadAt(r, 15);
  committer.join();
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->value(), "pending");
}

TEST_F(TableTest, PendingInstallWriteConflict) {
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 20, "newer");
  Version* v = table_.NewPendingVersion(10, "older", false);
  EXPECT_EQ(table_.TryInstallPending(r, v), InstallResult::kWriteConflict);
  FreeVersion(v);  // not linked on failure
}

TEST_F(TableTest, PendingInstallReadConflict) {
  const RowId r = table_.AllocateRow();
  const Version* committed = table_.InstallCommitted(r, 10, "base");
  // A reader at ts 50 observed the base version.
  const_cast<Version*>(committed)->ObserveRead(50);
  // Installing at ts 30 would invalidate that read.
  Version* v = table_.NewPendingVersion(30, "mid", false);
  EXPECT_EQ(table_.TryInstallPending(r, v), InstallResult::kReadConflict);
  FreeVersion(v);
}

TEST_F(TableTest, AbortedHeadIsUnlinked) {
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 10, "base");
  Version* v = table_.NewPendingVersion(20, "doomed", false);
  ASSERT_EQ(table_.TryInstallPending(r, v), InstallResult::kOk);
  table_.AbortPending(r, v, epochs_);
  EXPECT_EQ(table_.HeadTimestamp(r), 10u);
  EXPECT_EQ(table_.ReadLatestCommitted(r)->value(), "base");
  epochs_.ReclaimSome();
  epochs_.ReclaimSome();
}

TEST_F(TableTest, AbortedMidChainIsSkippedByReaders) {
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 10, "base");
  Version* doomed = table_.NewPendingVersion(20, "doomed", false);
  ASSERT_EQ(table_.TryInstallPending(r, doomed), InstallResult::kOk);
  // Another commit lands above before the abort.
  table_.InstallCommitted(r, 30, "top", false, /*allow_out_of_order=*/true);
  doomed->SetStatus(VersionStatus::kAborted);

  EXPECT_EQ(table_.ReadAt(r, 25)->value(), "base");   // skips aborted 20
  EXPECT_EQ(table_.ReadAt(r, 35)->value(), "top");
  EXPECT_EQ(table_.NewestVisibleTimestamp(r), 30u);
}

TEST_F(TableTest, ObserveReadIsMonotonic) {
  const RowId r = table_.AllocateRow();
  auto* v = const_cast<Version*>(table_.InstallCommitted(r, 10, "x"));
  v->ObserveRead(50);
  v->ObserveRead(30);  // lower: no effect
  EXPECT_EQ(v->read_ts.load(), 50u);
  v->ObserveRead(70);
  EXPECT_EQ(v->read_ts.load(), 70u);
}

TEST_F(TableTest, GcTruncatesBelowHorizon) {
  const RowId r = table_.AllocateRow();
  for (Timestamp ts = 10; ts <= 100; ts += 10) {
    table_.InstallCommitted(r, ts, "v" + std::to_string(ts));
  }
  // Horizon 55: newest committed <= 55 is ts 50; cut 10..40 (4 versions).
  // The whole tail is one batched retirement (return value counts truncated
  // chains); the exact freed count surfaces at reclaim time.
  EXPECT_EQ(table_.CollectRowGarbage(r, 55, epochs_), 1u);
  EXPECT_EQ(table_.ReadAt(r, 55)->value(), "v50");
  EXPECT_EQ(table_.ReadAt(r, 45), nullptr);  // older history gone
  EXPECT_EQ(table_.ReadAt(r, kMaxTimestamp)->value(), "v100");
  EXPECT_EQ(epochs_.ReclaimSome() + epochs_.ReclaimSome(), 4u)
      << "batched retirement must free exactly the truncated chain";
}

TEST_F(TableTest, GcPreservesNewestCommittedAtHorizon) {
  const RowId r = table_.AllocateRow();
  table_.InstallCommitted(r, 10, "only");
  EXPECT_EQ(table_.CollectRowGarbage(r, 100, epochs_), 0u);
  EXPECT_EQ(table_.ReadAt(r, 100)->value(), "only");
}

TEST_F(TableTest, GcNoopOnEmptyRow) {
  table_.EnsureRow(0);
  EXPECT_EQ(table_.CollectRowGarbage(0, 100, epochs_), 0u);
}

TEST_F(TableTest, GcWholeTable) {
  for (int i = 0; i < 10; ++i) {
    const RowId r = table_.AllocateRow();
    table_.InstallCommitted(r, 10, "a");
    table_.InstallCommitted(r, 20, "b");
  }
  EXPECT_EQ(table_.CountVersionsApprox(), 20u);
  // Return value counts rows whose chains were truncated (one per row here).
  EXPECT_EQ(table_.CollectGarbage(50, epochs_), 10u);
  EXPECT_EQ(table_.CountVersionsApprox(), 10u);
}

TEST_F(TableTest, ConcurrentPendingInstallsOnOneRowSerialize) {
  // MVTSO conflict rule: among concurrent installers to one row, timestamps
  // must end up strictly increasing head-first and losers must get conflicts.
  const RowId r = table_.AllocateRow();
  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 1; t <= kThreads; ++t) {
    threads.emplace_back([&, t] {
      Version* v = table_.NewPendingVersion(static_cast<Timestamp>(t), "x", false);
      if (table_.TryInstallPending(r, v) == InstallResult::kOk) {
        v->SetStatus(VersionStatus::kCommitted);
        ok.fetch_add(1);
      } else {
        FreeVersion(v);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(ok.load(), 1);
  // Chain must be strictly decreasing in write_ts from the head.
  Timestamp prev = kMaxTimestamp;
  int count = 0;
  for (const Version* v = table_.ReadLatestCommitted(r); v != nullptr;
       v = v->Next()) {
    EXPECT_LT(v->write_ts, prev);
    prev = v->write_ts;
    ++count;
  }
  EXPECT_EQ(count, ok.load());
}

TEST_F(TableTest, ConcurrentReadersDuringGc) {
  const RowId r = table_.AllocateRow();
  for (Timestamp ts = 1; ts <= 1000; ++ts) {
    table_.InstallCommitted(r, ts, std::to_string(ts));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto guard = epochs_.Enter();
        const Version* v = table_.ReadAt(r, kMaxTimestamp);
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(v->value(), "1000");
      }
    });
  }
  for (Timestamp horizon = 100; horizon <= 1000; horizon += 100) {
    table_.CollectRowGarbage(r, horizon, epochs_);
    epochs_.ReclaimSome();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(table_.CountVersionsApprox(), 1u);
}

TEST(DatabaseTest, CreateTablesAndReadKeyAt) {
  Database db;
  const TableId t = db.CreateTable("users");
  EXPECT_EQ(db.NumTables(), 1u);
  const RowId r = db.table(t).AllocateRow();
  db.index(t).Insert(/*key=*/7, r);
  db.table(t).InstallCommitted(r, 5, "alice");

  const auto guard = db.epochs().Enter();
  const Version* v = db.ReadKeyAt(t, 7, 10);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value(), "alice");
  EXPECT_EQ(db.ReadKeyAt(t, 7, 4), nullptr);
  EXPECT_EQ(db.ReadKeyAt(t, 8, 10), nullptr);
}

TEST(DatabaseTest, CollectGarbageAcrossTables) {
  Database db;
  const TableId a = db.CreateTable("a");
  const TableId b = db.CreateTable("b");
  for (TableId t : {a, b}) {
    const RowId r = db.table(t).AllocateRow();
    db.table(t).InstallCommitted(r, 1, "x");
    db.table(t).InstallCommitted(r, 2, "y");
  }
  EXPECT_EQ(db.CollectGarbage(10), 2u);
}

}  // namespace
}  // namespace c5::storage
