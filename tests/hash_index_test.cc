#include "index/hash_index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace c5::index {
namespace {

TEST(HashIndexTest, InsertAndLookup) {
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(42, 7));
  ASSERT_TRUE(idx.Lookup(42).has_value());
  EXPECT_EQ(*idx.Lookup(42), 7u);
}

TEST(HashIndexTest, LookupMissingReturnsNullopt) {
  HashIndex idx;
  EXPECT_FALSE(idx.Lookup(99).has_value());
}

TEST(HashIndexTest, DuplicateInsertRejected) {
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(1, 10));
  EXPECT_FALSE(idx.Insert(1, 20));
  EXPECT_EQ(*idx.Lookup(1), 10u);
}

TEST(HashIndexTest, UpsertOverwrites) {
  HashIndex idx;
  idx.Upsert(1, 10);
  idx.Upsert(1, 20);
  EXPECT_EQ(*idx.Lookup(1), 20u);
  EXPECT_EQ(idx.Size(), 1u);
}

TEST(HashIndexTest, KeysZeroAndOneAreUsable) {
  // Raw keys 0 and 1 collide with internal sentinel encodings if mishandled.
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(0, 100));
  EXPECT_TRUE(idx.Insert(1, 101));
  EXPECT_EQ(*idx.Lookup(0), 100u);
  EXPECT_EQ(*idx.Lookup(1), 101u);
}

TEST(HashIndexTest, MaxKeyIsUsable) {
  HashIndex idx;
  const Key k = ~Key{0} - 2;  // +2 encoding must not overflow into sentinels
  EXPECT_TRUE(idx.Insert(k, 5));
  EXPECT_EQ(*idx.Lookup(k), 5u);
}

TEST(HashIndexTest, EraseRemovesEntry) {
  HashIndex idx;
  idx.Insert(1, 10);
  EXPECT_TRUE(idx.Erase(1));
  EXPECT_FALSE(idx.Lookup(1).has_value());
  EXPECT_FALSE(idx.Erase(1));
  EXPECT_EQ(idx.Size(), 0u);
}

TEST(HashIndexTest, ReinsertAfterEraseUsesTombstone) {
  HashIndex idx(8, 1);  // single shard, tiny capacity: forces probing
  for (Key k = 0; k < 6; ++k) idx.Insert(k, k);
  idx.Erase(3);
  EXPECT_TRUE(idx.Insert(3, 33));
  EXPECT_EQ(*idx.Lookup(3), 33u);
  for (Key k = 0; k < 6; ++k) {
    if (k != 3) {
      EXPECT_EQ(*idx.Lookup(k), k);
    }
  }
}

TEST(HashIndexTest, GrowPreservesEntries) {
  HashIndex idx(8, 1);
  constexpr Key kN = 10000;
  for (Key k = 0; k < kN; ++k) ASSERT_TRUE(idx.Insert(k, k * 2));
  EXPECT_EQ(idx.Size(), kN);
  for (Key k = 0; k < kN; ++k) ASSERT_EQ(*idx.Lookup(k), k * 2);
}

TEST(HashIndexTest, ProbeAcrossTombstonesFindsDeepEntries) {
  HashIndex idx(16, 1);
  for (Key k = 0; k < 12; ++k) idx.Insert(k, k);
  for (Key k = 0; k < 6; ++k) idx.Erase(k);
  for (Key k = 6; k < 12; ++k) EXPECT_EQ(*idx.Lookup(k), k);
}

TEST(HashIndexTest, MatchesReferenceMapUnderRandomOps) {
  HashIndex idx(16, 4);
  std::unordered_map<Key, RowId> ref;
  Rng rng(test::TestSeed(77));
  for (int i = 0; i < 50000; ++i) {
    const Key k = rng.Uniform(2000);
    switch (rng.Uniform(3)) {
      case 0: {
        const bool inserted = idx.Insert(k, i);
        EXPECT_EQ(inserted, ref.find(k) == ref.end());
        if (inserted) ref[k] = i;
        break;
      }
      case 1: {
        const bool erased = idx.Erase(k);
        EXPECT_EQ(erased, ref.erase(k) == 1);
        break;
      }
      default: {
        const auto got = idx.Lookup(k);
        const auto it = ref.find(k);
        EXPECT_EQ(got.has_value(), it != ref.end());
        if (got.has_value() && it != ref.end()) {
          EXPECT_EQ(*got, it->second);
        }
      }
    }
  }
  EXPECT_EQ(idx.Size(), ref.size());
}

TEST(HashIndexTest, ConcurrentDisjointInserts) {
  HashIndex idx;
  constexpr int kThreads = 8;
  constexpr Key kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx, t] {
      for (Key k = 0; k < kPerThread; ++k) {
        const Key key = static_cast<Key>(t) * kPerThread + k;
        ASSERT_TRUE(idx.Insert(key, key + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(idx.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (Key k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_EQ(*idx.Lookup(k), k + 1);
  }
}

TEST(HashIndexTest, ConcurrentInsertRaceExactlyOneWins) {
  for (int round = 0; round < 20; ++round) {
    HashIndex idx;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&idx, &winners, t] {
        if (idx.Insert(123, static_cast<RowId>(t))) winners.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1);
    EXPECT_TRUE(idx.Lookup(123).has_value());
  }
}

TEST(HashIndexTest, ConcurrentReadersDuringInserts) {
  HashIndex idx;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (Key k = 0; k < 100000; ++k) idx.Insert(k, k);
  });
  std::vector<std::thread> readers;
  const std::uint64_t base_seed = test::TestSeed(91);  // main thread only
  for (int t = 0; t < 4; ++t) {
    // NB: `t` by value — the loop variable dies before the readers do.
    readers.emplace_back([&, t] {
      Rng rng(base_seed + t);
      while (!stop.load()) {
        const Key k = rng.Uniform(100000);
        const auto v = idx.Lookup(k);
        if (v.has_value()) {
          ASSERT_EQ(*v, k);
        }
      }
    });
  }
  writer.join();
  stop.store(true);
  for (auto& r : readers) r.join();
}

class HashIndexShardParamTest : public ::testing::TestWithParam<int> {};

TEST_P(HashIndexShardParamTest, WorksWithVariousShardCounts) {
  HashIndex idx(32, GetParam());
  for (Key k = 0; k < 5000; ++k) ASSERT_TRUE(idx.Insert(k, k));
  for (Key k = 0; k < 5000; ++k) ASSERT_EQ(*idx.Lookup(k), k);
  EXPECT_EQ(idx.Size(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, HashIndexShardParamTest,
                         ::testing::Values(1, 2, 3, 16, 128, 1000));

}  // namespace
}  // namespace c5::index
