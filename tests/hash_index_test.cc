#include "index/hash_index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace c5::index {
namespace {

TEST(HashIndexTest, InsertAndLookup) {
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(42, 7));
  ASSERT_TRUE(idx.Lookup(42).has_value());
  EXPECT_EQ(*idx.Lookup(42), 7u);
}

TEST(HashIndexTest, LookupMissingReturnsNullopt) {
  HashIndex idx;
  EXPECT_FALSE(idx.Lookup(99).has_value());
}

TEST(HashIndexTest, DuplicateInsertRejected) {
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(1, 10));
  EXPECT_FALSE(idx.Insert(1, 20));
  EXPECT_EQ(*idx.Lookup(1), 10u);
}

TEST(HashIndexTest, UpsertOverwrites) {
  HashIndex idx;
  idx.Upsert(1, 10);
  idx.Upsert(1, 20);
  EXPECT_EQ(*idx.Lookup(1), 20u);
  EXPECT_EQ(idx.Size(), 1u);
}

TEST(HashIndexTest, UpsertIfNewerKeepsNewestBinding) {
  HashIndex idx;
  // Apply order != commit order across rows: the newest-ts binding must win
  // regardless of arrival order.
  EXPECT_TRUE(idx.UpsertIfNewer(1, /*row=*/50, /*ts=*/90));
  EXPECT_FALSE(idx.UpsertIfNewer(1, /*row=*/10, /*ts=*/40));  // stale loses
  EXPECT_EQ(*idx.Lookup(1), 50u);
  EXPECT_TRUE(idx.UpsertIfNewer(1, /*row=*/60, /*ts=*/120));  // newer wins
  EXPECT_EQ(*idx.Lookup(1), 60u);
  // Equal timestamps rebind (last writer at the same ts wins — within one
  // transaction the per-key write is unique, so this is a tie-break only
  // tests exercise).
  EXPECT_TRUE(idx.UpsertIfNewer(1, /*row=*/61, /*ts=*/120));
  EXPECT_EQ(*idx.Lookup(1), 61u);
  const auto with_ts = idx.LookupWithTs(1);
  ASSERT_TRUE(with_ts.has_value());
  EXPECT_EQ(with_ts->first, 61u);
  EXPECT_EQ(with_ts->second, 120u);
}

TEST(HashIndexTest, UpsertIfNewerConvergesUnderConcurrentApply) {
  // Two workers apply the old-row and new-row creating records of the same
  // key in opposite orders; every key must end bound to the newest row.
  HashIndex idx;
  constexpr Key kKeys = 512;
  std::thread old_rows([&idx] {
    for (Key k = 0; k < kKeys; ++k) idx.UpsertIfNewer(k, k, /*ts=*/100 + k);
  });
  std::thread new_rows([&idx] {
    for (Key k = kKeys; k-- > 0;) {
      idx.UpsertIfNewer(k, 10000 + k, /*ts=*/5000 + k);
    }
  });
  old_rows.join();
  new_rows.join();
  for (Key k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(idx.Lookup(k).has_value());
    EXPECT_EQ(*idx.Lookup(k), 10000 + k) << "key " << k;
  }
}

TEST(HashIndexTest, GrowPreservesBindingTimestamps) {
  HashIndex idx(/*initial_capacity_per_shard=*/8, /*shard_count=*/1);
  for (Key k = 0; k < 256; ++k) {
    idx.UpsertIfNewer(k, k, /*ts=*/1000 + k);
  }
  // Post-grow, a stale rebind must still lose: timestamps survived rehash.
  for (Key k = 0; k < 256; ++k) {
    EXPECT_FALSE(idx.UpsertIfNewer(k, 9999, /*ts=*/5)) << "key " << k;
    EXPECT_EQ(*idx.Lookup(k), k);
  }
}

TEST(HashIndexTest, CollectRangeSortsAndFilters) {
  HashIndex idx;
  for (const Key k : {40, 7, 99, 12, 55, 3, 70}) {
    idx.Upsert(static_cast<Key>(k), static_cast<RowId>(k * 10));
  }
  std::vector<std::pair<Key, RowId>> out;
  idx.CollectRange(7, 70, &out);  // [7, 70): excludes 3, 70, 99
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], (std::pair<Key, RowId>{7, 70}));
  EXPECT_EQ(out[1], (std::pair<Key, RowId>{12, 120}));
  EXPECT_EQ(out[2], (std::pair<Key, RowId>{40, 400}));
  EXPECT_EQ(out[3], (std::pair<Key, RowId>{55, 550}));
}

TEST(HashIndexTest, CollectRangeBoundaries) {
  HashIndex idx;
  const Key top = ~Key{0} - 2;  // largest key the +2 encoding can store
  idx.Upsert(0, 100);
  idx.Upsert(1, 101);
  idx.Upsert(50, 150);
  idx.Upsert(top, 200);

  // Key 0 is a real key, not the empty sentinel: [0, hi) must return it.
  std::vector<std::pair<Key, RowId>> out;
  idx.CollectRange(0, 51, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (std::pair<Key, RowId>{0, 100}));
  EXPECT_EQ(out[1], (std::pair<Key, RowId>{1, 101}));
  EXPECT_EQ(out[2], (std::pair<Key, RowId>{50, 150}));

  // lo == hi is an empty range at every position, including the extremes.
  for (const Key k : {Key{0}, Key{50}, ~Key{0}}) {
    out.clear();
    idx.CollectRange(k, k, &out);
    EXPECT_TRUE(out.empty()) << "lo == hi == " << k;
  }

  // hi at the top of the keyspace must not wrap: only the top key appears.
  out.clear();
  idx.CollectRange(top, ~Key{0}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::pair<Key, RowId>{top, 200}));

  // [0, 1) returns exactly key 0.
  out.clear();
  idx.CollectRange(0, 1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::pair<Key, RowId>{0, 100}));
}

TEST(HashIndexTest, KeysZeroAndOneAreUsable) {
  // Raw keys 0 and 1 collide with internal sentinel encodings if mishandled.
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(0, 100));
  EXPECT_TRUE(idx.Insert(1, 101));
  EXPECT_EQ(*idx.Lookup(0), 100u);
  EXPECT_EQ(*idx.Lookup(1), 101u);
}

TEST(HashIndexTest, MaxKeyIsUsable) {
  HashIndex idx;
  const Key k = ~Key{0} - 2;  // +2 encoding must not overflow into sentinels
  EXPECT_TRUE(idx.Insert(k, 5));
  EXPECT_EQ(*idx.Lookup(k), 5u);
}

TEST(HashIndexTest, EraseRemovesEntry) {
  HashIndex idx;
  idx.Insert(1, 10);
  EXPECT_TRUE(idx.Erase(1));
  EXPECT_FALSE(idx.Lookup(1).has_value());
  EXPECT_FALSE(idx.Erase(1));
  EXPECT_EQ(idx.Size(), 0u);
}

TEST(HashIndexTest, ReinsertAfterEraseUsesTombstone) {
  HashIndex idx(8, 1);  // single shard, tiny capacity: forces probing
  for (Key k = 0; k < 6; ++k) idx.Insert(k, k);
  idx.Erase(3);
  EXPECT_TRUE(idx.Insert(3, 33));
  EXPECT_EQ(*idx.Lookup(3), 33u);
  for (Key k = 0; k < 6; ++k) {
    if (k != 3) {
      EXPECT_EQ(*idx.Lookup(k), k);
    }
  }
}

TEST(HashIndexTest, GrowPreservesEntries) {
  HashIndex idx(8, 1);
  constexpr Key kN = 10000;
  for (Key k = 0; k < kN; ++k) ASSERT_TRUE(idx.Insert(k, k * 2));
  EXPECT_EQ(idx.Size(), kN);
  for (Key k = 0; k < kN; ++k) ASSERT_EQ(*idx.Lookup(k), k * 2);
}

TEST(HashIndexTest, ProbeAcrossTombstonesFindsDeepEntries) {
  HashIndex idx(16, 1);
  for (Key k = 0; k < 12; ++k) idx.Insert(k, k);
  for (Key k = 0; k < 6; ++k) idx.Erase(k);
  for (Key k = 6; k < 12; ++k) EXPECT_EQ(*idx.Lookup(k), k);
}

TEST(HashIndexTest, MatchesReferenceMapUnderRandomOps) {
  HashIndex idx(16, 4);
  std::unordered_map<Key, RowId> ref;
  Rng rng(test::TestSeed(77));
  for (int i = 0; i < 50000; ++i) {
    const Key k = rng.Uniform(2000);
    switch (rng.Uniform(3)) {
      case 0: {
        const bool inserted = idx.Insert(k, i);
        EXPECT_EQ(inserted, ref.find(k) == ref.end());
        if (inserted) ref[k] = i;
        break;
      }
      case 1: {
        const bool erased = idx.Erase(k);
        EXPECT_EQ(erased, ref.erase(k) == 1);
        break;
      }
      default: {
        const auto got = idx.Lookup(k);
        const auto it = ref.find(k);
        EXPECT_EQ(got.has_value(), it != ref.end());
        if (got.has_value() && it != ref.end()) {
          EXPECT_EQ(*got, it->second);
        }
      }
    }
  }
  EXPECT_EQ(idx.Size(), ref.size());
}

TEST(HashIndexTest, ConcurrentDisjointInserts) {
  HashIndex idx;
  constexpr int kThreads = 8;
  constexpr Key kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx, t] {
      for (Key k = 0; k < kPerThread; ++k) {
        const Key key = static_cast<Key>(t) * kPerThread + k;
        ASSERT_TRUE(idx.Insert(key, key + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(idx.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (Key k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_EQ(*idx.Lookup(k), k + 1);
  }
}

TEST(HashIndexTest, ConcurrentInsertRaceExactlyOneWins) {
  for (int round = 0; round < 20; ++round) {
    HashIndex idx;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&idx, &winners, t] {
        if (idx.Insert(123, static_cast<RowId>(t))) winners.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1);
    EXPECT_TRUE(idx.Lookup(123).has_value());
  }
}

TEST(HashIndexTest, ConcurrentReadersDuringInserts) {
  HashIndex idx;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (Key k = 0; k < 100000; ++k) idx.Insert(k, k);
  });
  std::vector<std::thread> readers;
  const std::uint64_t base_seed = test::TestSeed(91);  // main thread only
  for (int t = 0; t < 4; ++t) {
    // NB: `t` by value — the loop variable dies before the readers do.
    readers.emplace_back([&, t] {
      Rng rng(base_seed + t);
      while (!stop.load()) {
        const Key k = rng.Uniform(100000);
        const auto v = idx.Lookup(k);
        if (v.has_value()) {
          ASSERT_EQ(*v, k);
        }
      }
    });
  }
  writer.join();
  stop.store(true);
  for (auto& r : readers) r.join();
}

class HashIndexShardParamTest : public ::testing::TestWithParam<int> {};

TEST_P(HashIndexShardParamTest, WorksWithVariousShardCounts) {
  HashIndex idx(32, GetParam());
  for (Key k = 0; k < 5000; ++k) ASSERT_TRUE(idx.Insert(k, k));
  for (Key k = 0; k < 5000; ++k) ASSERT_EQ(*idx.Lookup(k), k);
  EXPECT_EQ(idx.Size(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, HashIndexShardParamTest,
                         ::testing::Values(1, 2, 3, 16, 128, 1000));

}  // namespace
}  // namespace c5::index
